#include "core/segments.h"

#include <algorithm>

#include "core/pivots.h"
#include "util/serde.h"

namespace fsjoin {

SegmentSplit SplitIntoSegments(const OrderedRecord& record,
                               const std::vector<TokenRank>& pivots) {
  SegmentSplit split;
  const std::vector<TokenRank>& tokens = record.tokens;
  size_t i = 0;
  while (i < tokens.size()) {
    const uint32_t fragment = SegmentOfRank(pivots, tokens[i]);
    // End of this fragment's rank range (exclusive); the last fragment is
    // unbounded.
    size_t j = i;
    if (fragment < pivots.size()) {
      const TokenRank limit = pivots[fragment];
      while (j < tokens.size() && tokens[j] < limit) ++j;
    } else {
      j = tokens.size();
    }
    SegmentRecord seg;
    seg.rid = record.id;
    seg.record_size = static_cast<uint32_t>(tokens.size());
    seg.head = static_cast<uint32_t>(i);
    seg.tokens.assign(tokens.begin() + i, tokens.begin() + j);
    split.fragment_ids.push_back(fragment);
    split.segments.push_back(std::move(seg));
    i = j;
  }
  return split;
}

void EncodeSegment(const SegmentRecord& segment, std::string* out) {
  PutVarint32(out, segment.rid);
  PutVarint32(out, segment.record_size);
  PutVarint32(out, segment.head);
  PutUint32Vector(out, segment.tokens);
}

Status DecodeSegment(std::string_view data, SegmentRecord* segment) {
  Decoder dec(data);
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&segment->rid));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&segment->record_size));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&segment->head));
  FSJOIN_RETURN_NOT_OK(dec.GetUint32Vector(&segment->tokens));
  if (!dec.done()) {
    return Status::Internal("trailing bytes after segment record");
  }
  return Status::OK();
}

}  // namespace fsjoin
