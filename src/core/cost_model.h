#ifndef FSJOIN_CORE_COST_MODEL_H_
#define FSJOIN_CORE_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "core/fsjoin_config.h"
#include "text/corpus.h"
#include "util/status.h"

namespace fsjoin {

/// The paper's cost analysis (§V-C, Lemma 5 and Appendix A) as executable
/// code. The analysis prices one FS-Join self-join (filtering +
/// verification jobs, the ordering job excluded as in the paper) as
///
///   map      Σ|s_i|·C_m                      — tokenize/split each record
///   shuffle  Σ|s_i|·C_s                      — duplicate-free: the map
///                                              output is the input itself
///   reduce   N·(M·p/N)²·avg|seg|·C_r         — loop-join cost per
///                                              fragment, N fragments
///   verify   K·(C_m + C_s + C_r) + K·β·C_o   — K = α·pair-candidates
///
/// where M = #records, N = #fragments, p = probability a record has a
/// non-empty segment in a fragment, α = candidate rate, β = result rate.
/// (The published formula has obvious typos — a stray N·α term and
/// mismatched parentheses; this is the cleaned-up form implied by the
/// Appendix A derivation, documented in DESIGN.md.)
struct CostModelParams {
  double cost_map = 1.0;      ///< C_m per token
  double cost_shuffle = 2.0;  ///< C_s per token
  double cost_reduce = 1.0;   ///< C_r per token comparison
  double cost_output = 1.0;   ///< C_o per output record
  /// Fixed cost per fragment (reduce-task scheduling, index setup). Not in
  /// the paper's formula — without it more fragments always win and the
  /// Lemma 5 optimum degenerates to "as many as possible"; any real
  /// cluster pays per-task overhead.
  double cost_per_fragment = 50000.0;

  /// Probability a record contributes a non-empty segment to a fragment
  /// (the paper's p). 1.0 is the conservative default.
  double segment_presence = 1.0;
  /// Fraction of co-fragment record pairs that become candidates (α).
  double candidate_rate = 0.001;
  /// Fraction of candidates that pass verification (β).
  double result_rate = 0.1;
};

/// Cost estimate in abstract cost units, by phase.
struct CostEstimate {
  double map = 0.0;
  double shuffle = 0.0;
  double reduce = 0.0;
  double verify = 0.0;

  double Total() const { return map + shuffle + reduce + verify; }
  std::string ToString() const;
};

/// Evaluates Lemma 5 for a corpus profile and fragment count.
CostEstimate EstimateFsJoinCost(const CorpusStats& stats,
                                uint32_t num_fragments,
                                const CostModelParams& params);

/// The fragment count minimizing the Lemma 5 estimate over [1, max_n].
/// More fragments cut the quadratic reduce term (the (M·p/N)² factor) but
/// cannot reduce map/shuffle — so the curve is convex and the argmin is
/// where reduce stops dominating.
uint32_t OptimalFragments(const CorpusStats& stats, uint32_t max_n,
                          const CostModelParams& params);

/// Applies the paper's sizing rules to a corpus: fragments = max(#workers,
/// ceil(data / worker memory)) (§IV "The Number of Pivots"), refined by the
/// Lemma 5 optimum; horizontal partitions sized so the expected fragment
/// fits in `worker_memory_bytes`.
FsJoinConfig AutoTuneConfig(const CorpusStats& stats, uint32_t num_workers,
                            uint64_t worker_memory_bytes, double theta);

}  // namespace fsjoin

#endif  // FSJOIN_CORE_COST_MODEL_H_
