#include "core/join_pipeline.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/filters.h"
#include "sim/set_ops.h"
#include "sim/similarity.h"

namespace fsjoin {

namespace {

using exec::KernelMode;

constexpr int MethodIndex(JoinMethod method) {
  return static_cast<int>(method);
}

/// Resolved kernels only: kScalar/kPacked/kSimd -> 0/1/2.
constexpr int KernelIndex(KernelMode kernel) {
  return static_cast<int>(kernel) - 1;
}

constexpr JoinMethod kMethods[] = {JoinMethod::kLoop, JoinMethod::kIndex,
                                   JoinMethod::kPrefix};
constexpr KernelMode kKernels[] = {KernelMode::kScalar, KernelMode::kPacked,
                                   KernelMode::kSimd};

/// Word-packed bucket-bitmap reject (the PR 3 gate): one AND decides
/// "provably disjoint" for short segments; longer ones saturate the 64-bit
/// summary and skip the test.
inline bool BitmapGateRejects(const SegmentBatch& batch, uint32_t i,
                              uint32_t j) {
  return std::min(batch.length(i), batch.length(j)) <= kPackedMaxTokens &&
         (batch.bitmap(i) & batch.bitmap(j)) == 0;
}

/// (container x container) dispatch for the kSimd kernel family, under the
/// bounded-overlap contract of set_ops.h. Only the array x array case can
/// stop early; the alternate-container kernels are already cheap enough
/// that they just return the exact overlap (which satisfies the contract
/// trivially).
uint64_t ContainerOverlapBounded(const SegmentBatch& b, uint32_t i, uint32_t j,
                                 uint64_t required) {
  using C = SegContainer;
  const C ci = b.container(i);
  const C cj = b.container(j);
  if (ci == C::kArray && cj == C::kArray) {
    return SimdOverlapBounded(b.tokens(i), b.length(i), b.tokens(j),
                              b.length(j), required);
  }
  if (ci == C::kBitset) {
    switch (cj) {
      case C::kBitset:
        return BitsetBitsetOverlap(b.bitset_words(i), b.bitset_word0(i),
                                   b.bitset_num_words(i), b.bitset_words(j),
                                   b.bitset_word0(j), b.bitset_num_words(j));
      case C::kRuns:
        return BitsetRunsOverlap(b.bitset_words(i), b.bitset_word0(i),
                                 b.bitset_num_words(i), /*base=*/0, b.runs(j),
                                 b.num_runs(j));
      case C::kArray:
        return BitsetArrayOverlap(b.bitset_words(i), b.bitset_word0(i),
                                  b.bitset_num_words(i), /*base=*/0,
                                  b.tokens(j), b.length(j));
    }
  }
  // ci == kRuns, or ci == kArray with cj != kArray: flip so the stronger
  // container drives, or run the runs-side kernels directly.
  switch (cj) {
    case C::kBitset:
      return ContainerOverlapBounded(b, j, i, required);
    case C::kRuns:
      if (ci == C::kRuns) {
        return RunsRunsOverlap(b.runs(i), b.num_runs(i), b.runs(j),
                               b.num_runs(j));
      }
      return RunsArrayOverlap(b.runs(j), b.num_runs(j), b.tokens(i),
                              b.length(i));
    case C::kArray:
      return RunsArrayOverlap(b.runs(i), b.num_runs(i), b.tokens(j),
                              b.length(j));
  }
  return 0;  // unreachable
}

/// The filter pipeline on one candidate segment pair, monomorphized on the
/// enabled-filter mask and kernel family; disabled filters compile away.
///
/// All kernels produce identical emissions; the only observable difference
/// is counter *attribution* under kSimd: a pair whose bounded merge stops
/// below the SegI required-overlap bound counts as pruned_segi even when
/// its exact overlap is 0 (the scalar/packed paths, which always finish the
/// merge, would count empty_overlap first). The split is deterministic —
/// the bounded contract makes `result < required` ISA-independent — so
/// counters still agree between any two runs of the same kernel mode.
template <uint32_t Mask, KernelMode K>
void ProcessPairT(const SegmentBatch& batch, uint32_t i, uint32_t j,
                  const FragmentJoinOptions& opts,
                  std::vector<PartialOverlap>* out, FilterCounters* counters) {
  ++counters->pairs_considered;
  const SegmentView x = batch.View(i);
  const SegmentView y = batch.View(j);
  if (opts.pair_allowed && !opts.pair_allowed(x, y)) {
    ++counters->pruned_role;
    return;
  }
  if constexpr ((Mask & kPipelineStrL) != 0) {
    if (StrLengthPrunes(opts.function, opts.theta, x.record_size,
                        y.record_size)) {
      ++counters->pruned_strl;
      return;
    }
  }
  if constexpr ((Mask & kPipelineSegL) != 0) {
    if (SegmentLengthPrunes(opts.function, opts.theta, x, y)) {
      ++counters->pruned_segl;
      return;
    }
  }
  uint64_t overlap = 0;
  if constexpr (K == KernelMode::kSimd) {
    if (BitmapGateRejects(batch, i, j)) {
      ++counters->empty_overlap;
      return;
    }
    // Verification bound: any pair this fragment may emit satisfies
    // overlap >= SegmentMinLocalOverlap for BOTH segments (the local-overlap
    // gate of the scalar path), so the merge may stop as soon as that bound
    // is unreachable. With SegI off the gate does not apply and the bound
    // degenerates to 1, which forces an exact merge (contract).
    uint64_t required = 1;
    if constexpr ((Mask & kPipelineSegI) != 0) {
      required =
          std::max(SegmentMinLocalOverlap(opts.function, opts.theta, x),
                   SegmentMinLocalOverlap(opts.function, opts.theta, y));
    }
    overlap = ContainerOverlapBounded(batch, i, j, required);
    if (overlap < required) {
      // Exact overlap is provably < required too. required == 1 means the
      // merge ran to completion and the pair is truly token-disjoint.
      if (required <= 1) {
        ++counters->empty_overlap;
      } else {
        ++counters->pruned_segi;
      }
      return;
    }
    if constexpr ((Mask & kPipelineSegI) != 0) {
      // overlap >= required >= both local bounds, so only the Lemma 3 check
      // itself remains.
      if (SegmentIntersectionPrunes(opts.function, opts.theta, x, y,
                                    overlap)) {
        ++counters->pruned_segi;
        return;
      }
    }
  } else {
    if constexpr (K == KernelMode::kPacked) {
      if (BitmapGateRejects(batch, i, j)) {
        ++counters->empty_overlap;
        return;
      }
    }
    overlap = SortedOverlap(x.tokens, x.num_tokens, y.tokens, y.num_tokens);
    if (overlap == 0) {
      ++counters->empty_overlap;
      return;
    }
    if constexpr ((Mask & kPipelineSegI) != 0) {
      if (SegmentIntersectionPrunes(opts.function, opts.theta, x, y,
                                    overlap)) {
        ++counters->pruned_segi;
        return;
      }
      // Local-overlap gate: any θ-similar pair satisfies
      // c_i >= SegmentMinLocalOverlap for BOTH segments (the bound behind
      // the Prefix Join; see DESIGN.md), so partial counts below it belong
      // to dissimilar pairs and can be dropped without affecting the result.
      if (overlap < SegmentMinLocalOverlap(opts.function, opts.theta, x) ||
          overlap < SegmentMinLocalOverlap(opts.function, opts.theta, y)) {
        ++counters->pruned_segi;
        return;
      }
    }
  }
  if constexpr ((Mask & kPipelineSegD) != 0) {
    if (SegmentDifferencePrunes(opts.function, opts.theta, x, y, overlap)) {
      ++counters->pruned_segd;
      return;
    }
  }
  PartialOverlap result;
  if (x.rid <= y.rid) {
    result =
        PartialOverlap{x.rid, y.rid, x.record_size, y.record_size, overlap};
  } else {
    result =
        PartialOverlap{y.rid, x.rid, y.record_size, x.record_size, overlap};
  }
  out->push_back(result);
  ++counters->emitted;
}

/// Runs probes [0, probes) in morsels of opts.morsel_size on the shared
/// pool; `fn(begin, end, out, counters)` must append the probe range's
/// results in serial order. Each morsel writes its own buffers, merged in
/// morsel-index order afterwards, so the concatenation equals the serial
/// probe order and the counter sums are exact — output and counters are
/// byte-identical to the serial run regardless of morsel size, thread
/// count, or scheduling. Falls back to one serial call when morsels are
/// disabled or the fragment fits in a single morsel.
template <typename RangeFn>
void RunMorsels(uint32_t probes, const FragmentJoinOptions& opts,
                const RangeFn& fn, std::vector<PartialOverlap>* out,
                FilterCounters* counters) {
  const size_t morsel = opts.morsel_size;
  if (opts.morsel_pool == nullptr || morsel == 0 || probes <= morsel) {
    fn(0, probes, out, counters);
    return;
  }
  const size_t num_morsels = (probes + morsel - 1) / morsel;
  std::vector<std::vector<PartialOverlap>> morsel_out(num_morsels);
  std::vector<FilterCounters> morsel_counters(num_morsels);
  opts.morsel_pool->ParallelFor(
      num_morsels, 1, [&](size_t begin_m, size_t end_m) {
        for (size_t m = begin_m; m < end_m; ++m) {
          const uint32_t begin = static_cast<uint32_t>(m * morsel);
          const uint32_t end =
              static_cast<uint32_t>(std::min<size_t>(probes, begin + morsel));
          fn(begin, end, &morsel_out[m], &morsel_counters[m]);
        }
      });
  size_t total = 0;
  for (const auto& part : morsel_out) total += part.size();
  out->reserve(out->size() + total);
  for (size_t m = 0; m < num_morsels; ++m) {
    counters->Add(morsel_counters[m]);
    out->insert(out->end(), morsel_out[m].begin(), morsel_out[m].end());
  }
}

/// Prefix index over the whole batch, built once up front so probe morsels
/// are independent. `order` sorts rows by ascending (record_size, rid);
/// postings hold order *positions*, so each list ascends both in insertion
/// position and in record size. A probe at position `oi` considers exactly
/// the postings with position < oi and record_size above its length-filter
/// bound — the same candidates, in the same order, as the incremental
/// build-while-probing formulation (whose front-trimming this replaces
/// with a stateless binary search; sound because the bound is monotone in
/// the probe's record size).
struct PrefixIndex {
  std::vector<uint32_t> order;       ///< batch rows in probe order
  std::vector<uint32_t> prefix_len;  ///< per order position
  std::unordered_map<TokenRank, std::vector<uint32_t>> postings;
};

template <typename LenFn>
PrefixIndex BuildPrefixIndex(const SegmentBatch& batch, LenFn prefix_len) {
  PrefixIndex index;
  const uint32_t n = batch.size();
  index.order.resize(n);
  for (uint32_t i = 0; i < n; ++i) index.order[i] = i;
  std::sort(index.order.begin(), index.order.end(),
            [&](uint32_t a, uint32_t b) {
              if (batch.record_size(a) != batch.record_size(b)) {
                return batch.record_size(a) < batch.record_size(b);
              }
              return batch.rid(a) < batch.rid(b);
            });
  index.prefix_len.resize(n);
  for (uint32_t oi = 0; oi < n; ++oi) {
    const uint32_t row = index.order[oi];
    const uint32_t px = static_cast<uint32_t>(prefix_len(row));
    index.prefix_len[oi] = px;
    const TokenRank* tokens = batch.tokens(row);
    for (uint32_t p = 0; p < px; ++p) {
      index.postings[tokens[p]].push_back(oi);
    }
  }
  return index;
}

/// R-S variant: indexes only the given rows (the build/S side). The probe
/// side is never inserted, so the index is static and every probe sees the
/// full build side — there is no position-<-probe cut like the self-join
/// formulation needs to avoid double enumeration.
template <typename LenFn>
PrefixIndex BuildPrefixIndexOverRows(const SegmentBatch& batch,
                                     const std::vector<uint32_t>& rows,
                                     LenFn prefix_len) {
  PrefixIndex index;
  index.order = rows;
  std::sort(index.order.begin(), index.order.end(),
            [&](uint32_t a, uint32_t b) {
              if (batch.record_size(a) != batch.record_size(b)) {
                return batch.record_size(a) < batch.record_size(b);
              }
              return batch.rid(a) < batch.rid(b);
            });
  index.prefix_len.resize(index.order.size());
  for (uint32_t oi = 0; oi < index.order.size(); ++oi) {
    const uint32_t row = index.order[oi];
    const uint32_t px = static_cast<uint32_t>(prefix_len(row));
    index.prefix_len[oi] = px;
    const TokenRank* tokens = batch.tokens(row);
    for (uint32_t p = 0; p < px; ++p) {
      index.postings[tokens[p]].push_back(oi);
    }
  }
  return index;
}

/// Per-morsel candidate-dedup scratch: probe-stamp arrays recycled across
/// morsels. Stamps are order positions, unique per probe within one batch
/// join, so a recycled array never needs resetting.
class StampPool {
 public:
  explicit StampPool(size_t n) : n_(n) {}

  std::unique_ptr<std::vector<uint32_t>> Acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        auto scratch = std::move(free_.back());
        free_.pop_back();
        return scratch;
      }
    }
    return std::make_unique<std::vector<uint32_t>>(
        n_, std::numeric_limits<uint32_t>::max());
  }

  void Release(std::unique_ptr<std::vector<uint32_t>> scratch) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(scratch));
  }

 private:
  size_t n_;
  std::mutex mu_;
  std::vector<std::unique_ptr<std::vector<uint32_t>>> free_;
};

template <uint32_t Mask, KernelMode K>
void LoopJoinRangeT(const SegmentBatch& batch, const FragmentJoinOptions& opts,
                    uint32_t begin, uint32_t end,
                    std::vector<PartialOverlap>* out,
                    FilterCounters* counters) {
  const uint32_t n = batch.size();
  for (uint32_t i = begin; i < end; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      ProcessPairT<Mask, K>(batch, i, j, opts, out, counters);
    }
  }
}

/// R-S nested loop: probe rows [begin, end) of the side-tagged probe list
/// against every build row. Same-side pairs are never enumerated.
template <uint32_t Mask, KernelMode K>
void RsLoopJoinRangeT(const SegmentBatch& batch,
                      const FragmentJoinOptions& opts, uint32_t begin,
                      uint32_t end, std::vector<PartialOverlap>* out,
                      FilterCounters* counters) {
  const std::vector<uint32_t>& probes = batch.probe_rows();
  const std::vector<uint32_t>& builds = batch.build_rows();
  for (uint32_t pi = begin; pi < end; ++pi) {
    const uint32_t i = probes[pi];
    for (uint32_t j : builds) {
      ProcessPairT<Mask, K>(batch, i, j, opts, out, counters);
    }
  }
}

template <uint32_t Mask, KernelMode K>
void IndexedProbeRangeT(const SegmentBatch& batch,
                        const FragmentJoinOptions& opts,
                        const PrefixIndex& index, uint32_t begin, uint32_t end,
                        std::vector<uint32_t>* last_probe,
                        std::vector<PartialOverlap>* out,
                        FilterCounters* counters) {
  for (uint32_t oi = begin; oi < end; ++oi) {
    const uint32_t xi = index.order[oi];
    const uint32_t px = index.prefix_len[oi];
    uint64_t min_partner = 0;
    if constexpr ((Mask & kPipelineStrL) != 0) {
      min_partner = PartnerSizeLowerBound(opts.function, opts.theta,
                                          batch.record_size(xi));
    }
    const TokenRank* tokens = batch.tokens(xi);
    for (uint32_t p = 0; p < px; ++p) {
      auto it = index.postings.find(tokens[p]);
      if (it == index.postings.end()) continue;
      const std::vector<uint32_t>& list = it->second;
      // Candidates: postings inserted before this probe whose record size
      // passes the length-filter bound. Record sizes ascend along the list,
      // so both bounds are binary searches.
      auto first = list.begin();
      if (min_partner > 0) {
        first = std::lower_bound(
            list.begin(), list.end(), min_partner,
            [&](uint32_t e, uint64_t bound) {
              return batch.record_size(index.order[e]) < bound;
            });
      }
      auto last = std::lower_bound(first, list.end(), oi);
      for (auto e = first; e != last; ++e) {
        const uint32_t j = index.order[*e];
        if ((*last_probe)[j] == oi) continue;  // already a candidate
        (*last_probe)[j] = oi;
        ProcessPairT<Mask, K>(batch, j, xi, opts, out, counters);
      }
    }
  }
}

/// R-S indexed probe: probe rows [begin, end) of the probe list against a
/// prefix index built over the build side only. Unlike the self-join
/// formulation the index holds records both shorter AND longer than the
/// probe, so the candidate window is bounded by the partner-size bounds on
/// both ends (record sizes ascend along every posting list — two binary
/// searches). `probe_prefix` holds the probe rows' own prefix lengths,
/// computed with the same per-row policy as the index side, which keeps the
/// prefix-sharing soundness argument pairwise identical to the self-join.
template <uint32_t Mask, KernelMode K>
void RsIndexedProbeRangeT(const SegmentBatch& batch,
                          const FragmentJoinOptions& opts,
                          const PrefixIndex& index,
                          const std::vector<uint32_t>& probe_prefix,
                          uint32_t begin, uint32_t end,
                          std::vector<uint32_t>* last_probe,
                          std::vector<PartialOverlap>* out,
                          FilterCounters* counters) {
  const std::vector<uint32_t>& probes = batch.probe_rows();
  for (uint32_t pi = begin; pi < end; ++pi) {
    const uint32_t xi = probes[pi];
    const uint32_t px = probe_prefix[pi];
    uint64_t min_partner = 0;
    uint64_t max_partner = std::numeric_limits<uint64_t>::max();
    if constexpr ((Mask & kPipelineStrL) != 0) {
      min_partner = PartnerSizeLowerBound(opts.function, opts.theta,
                                          batch.record_size(xi));
      max_partner = PartnerSizeUpperBound(opts.function, opts.theta,
                                          batch.record_size(xi));
    }
    const TokenRank* tokens = batch.tokens(xi);
    for (uint32_t p = 0; p < px; ++p) {
      auto it = index.postings.find(tokens[p]);
      if (it == index.postings.end()) continue;
      const std::vector<uint32_t>& list = it->second;
      auto first = list.begin();
      auto last = list.end();
      if constexpr ((Mask & kPipelineStrL) != 0) {
        first = std::lower_bound(
            list.begin(), list.end(), min_partner,
            [&](uint32_t e, uint64_t bound) {
              return batch.record_size(index.order[e]) < bound;
            });
        last = std::upper_bound(
            first, list.end(), max_partner, [&](uint64_t bound, uint32_t e) {
              return bound < batch.record_size(index.order[e]);
            });
      }
      for (auto e = first; e != last; ++e) {
        const uint32_t j = index.order[*e];
        if ((*last_probe)[j] == pi) continue;  // already a candidate
        (*last_probe)[j] = pi;
        ProcessPairT<Mask, K>(batch, j, xi, opts, out, counters);
      }
    }
  }
}

/// Compiled pipeline, nested-loop shape. Self vs. R-S is a run-time branch
/// taken once per fragment — doubling the template instantiations for it
/// would buy nothing (the side lists are loop bounds, not per-pair work).
template <uint32_t Mask, KernelMode K>
void LoopPipeline(const SegmentBatch& batch, const FragmentJoinOptions& opts,
                  std::vector<PartialOverlap>* out, FilterCounters* counters) {
  if (opts.rs_boundary.has_value()) {
    RunMorsels(
        static_cast<uint32_t>(batch.probe_rows().size()), opts,
        [&](uint32_t begin, uint32_t end,
            std::vector<PartialOverlap>* range_out,
            FilterCounters* range_counters) {
          RsLoopJoinRangeT<Mask, K>(batch, opts, begin, end, range_out,
                                    range_counters);
        },
        out, counters);
    return;
  }
  RunMorsels(
      batch.size(), opts,
      [&](uint32_t begin, uint32_t end, std::vector<PartialOverlap>* range_out,
          FilterCounters* range_counters) {
        LoopJoinRangeT<Mask, K>(batch, opts, begin, end, range_out,
                                range_counters);
      },
      out, counters);
}

/// Compiled pipeline, indexed-probe shape — serves both kIndex and kPrefix
/// (the per-row prefix length is a run-time choice made once at index
/// build, not a loop-shape difference worth doubling the instantiations
/// for).
template <uint32_t Mask, KernelMode K>
void IndexedPipeline(const SegmentBatch& batch,
                     const FragmentJoinOptions& opts,
                     std::vector<PartialOverlap>* out,
                     FilterCounters* counters) {
  const auto prefix_len = [&](uint32_t row) -> uint64_t {
    if (opts.method == JoinMethod::kIndex) return batch.length(row);
    if (opts.aggressive_segment_prefix) {
      // Paper §V-A: each segment filtered like an independent mini-join
      // at threshold θ. Fast but can drop partial counts (see
      // FsJoinConfig::aggressive_segment_prefix).
      return PrefixLength(opts.function, opts.theta, batch.length(row));
    }
    return SegmentPrefixLength(opts.function, opts.theta, batch.View(row));
  };
  if (opts.rs_boundary.has_value()) {
    // Index the build (S) side only; probe with the R side. Probes are
    // never inserted, so same-side pairs are structurally impossible.
    const PrefixIndex index =
        BuildPrefixIndexOverRows(batch, batch.build_rows(), prefix_len);
    const std::vector<uint32_t>& probes = batch.probe_rows();
    std::vector<uint32_t> probe_prefix(probes.size());
    for (uint32_t pi = 0; pi < probes.size(); ++pi) {
      probe_prefix[pi] = static_cast<uint32_t>(prefix_len(probes[pi]));
    }
    StampPool stamps(batch.size());
    RunMorsels(
        static_cast<uint32_t>(probes.size()), opts,
        [&](uint32_t begin, uint32_t end,
            std::vector<PartialOverlap>* range_out,
            FilterCounters* range_counters) {
          auto scratch = stamps.Acquire();
          RsIndexedProbeRangeT<Mask, K>(batch, opts, index, probe_prefix,
                                        begin, end, scratch.get(), range_out,
                                        range_counters);
          stamps.Release(std::move(scratch));
        },
        out, counters);
    return;
  }
  const PrefixIndex index = BuildPrefixIndex(batch, prefix_len);
  StampPool stamps(batch.size());
  RunMorsels(
      batch.size(), opts,
      [&](uint32_t begin, uint32_t end, std::vector<PartialOverlap>* range_out,
          FilterCounters* range_counters) {
        auto scratch = stamps.Acquire();
        IndexedProbeRangeT<Mask, K>(batch, opts, index, begin, end,
                                    scratch.get(), range_out, range_counters);
        stamps.Release(std::move(scratch));
      },
      out, counters);
}

/// Fills every kernel column of one filter-mask row of the table.
template <uint32_t Mask, typename Table>
void RegisterMask(Table& table) {
  table[MethodIndex(JoinMethod::kLoop)][Mask]
       [KernelIndex(KernelMode::kScalar)] =
           &LoopPipeline<Mask, KernelMode::kScalar>;
  table[MethodIndex(JoinMethod::kLoop)][Mask]
       [KernelIndex(KernelMode::kPacked)] =
           &LoopPipeline<Mask, KernelMode::kPacked>;
  table[MethodIndex(JoinMethod::kLoop)][Mask][KernelIndex(KernelMode::kSimd)] =
      &LoopPipeline<Mask, KernelMode::kSimd>;
  for (JoinMethod method : {JoinMethod::kIndex, JoinMethod::kPrefix}) {
    table[MethodIndex(method)][Mask][KernelIndex(KernelMode::kScalar)] =
        &IndexedPipeline<Mask, KernelMode::kScalar>;
    table[MethodIndex(method)][Mask][KernelIndex(KernelMode::kPacked)] =
        &IndexedPipeline<Mask, KernelMode::kPacked>;
    table[MethodIndex(method)][Mask][KernelIndex(KernelMode::kSimd)] =
        &IndexedPipeline<Mask, KernelMode::kSimd>;
  }
}

std::string MaskName(uint32_t mask) {
  if (mask == 0) return "none";
  std::string name;
  auto add = [&name](const char* part) {
    if (!name.empty()) name += '+';
    name += part;
  };
  if (mask & kPipelineStrL) add("strl");
  if (mask & kPipelineSegL) add("segl");
  if (mask & kPipelineSegI) add("segi");
  if (mask & kPipelineSegD) add("segd");
  return name;
}

}  // namespace

PipelineShape ShapeOf(const FragmentJoinOptions& opts) {
  PipelineShape shape;
  shape.method = opts.method;
  shape.filter_mask = (opts.use_length_filter ? kPipelineStrL : 0) |
                      (opts.use_segment_length_filter ? kPipelineSegL : 0) |
                      (opts.use_segment_intersection_filter ? kPipelineSegI
                                                            : 0) |
                      (opts.use_segment_difference_filter ? kPipelineSegD : 0);
  shape.kernel = exec::ResolveKernelMode(opts.kernel);
  return shape;
}

KernelRegistry::KernelRegistry() {
  [this]<std::size_t... M>(std::index_sequence<M...>) {
    (RegisterMask<static_cast<uint32_t>(M)>(table_), ...);
  }(std::make_index_sequence<kNumFilterMasks>{});
}

const KernelRegistry& KernelRegistry::Get() {
  static const KernelRegistry registry;
  return registry;
}

PipelineFn KernelRegistry::Lookup(const PipelineShape& shape) const {
  return table_[MethodIndex(shape.method)][shape.filter_mask & 15u]
               [KernelIndex(shape.kernel)];
}

PipelineFn KernelRegistry::LookupByName(std::string_view name) const {
  for (JoinMethod method : kMethods) {
    for (uint32_t mask = 0; mask < kNumFilterMasks; ++mask) {
      for (KernelMode kernel : kKernels) {
        const PipelineShape shape{method, mask, kernel};
        if (ShapeName(shape) == name) return Lookup(shape);
      }
    }
  }
  return nullptr;
}

std::string KernelRegistry::ShapeName(const PipelineShape& shape) {
  std::string name = JoinMethodName(shape.method);
  name += '/';
  name += MaskName(shape.filter_mask & 15u);
  name += '/';
  name += exec::KernelModeName(shape.kernel);
  return name;
}

std::vector<std::string> KernelRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(kNumMethods * kNumFilterMasks * kNumKernels);
  for (JoinMethod method : kMethods) {
    for (uint32_t mask = 0; mask < kNumFilterMasks; ++mask) {
      for (KernelMode kernel : kKernels) {
        names.push_back(ShapeName(PipelineShape{method, mask, kernel}));
      }
    }
  }
  return names;
}

}  // namespace fsjoin
