#include "core/fsjoin.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "core/jobs.h"
#include "core/pivots.h"
#include "exec/backend.h"
#include "exec/plan.h"
#include "tune/tuner.h"
#include "util/simd.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace fsjoin {

std::vector<mr::JobMetrics> FsJoinReport::AllJobs() const {
  return {ordering_job, filtering_job, verification_job};
}

std::vector<mr::JobMetrics> FsJoinReport::JoinJobs() const {
  return {filtering_job, verification_job};
}

std::string FsJoinReport::Summary() const {
  std::ostringstream os;
  os << config.Summary() << "\n";
  os << StrFormat(
      "  pivots: %zu vertical, %zu horizontal | candidates: %s | results: "
      "%s\n",
      pivots.size(), length_pivots.size(),
      WithThousandsSep(candidate_pairs).c_str(),
      WithThousandsSep(result_pairs).c_str());
  os << StrFormat(
      "  filters: considered=%s role=%s strl=%s segl=%s segi=%s segd=%s "
      "empty=%s emitted=%s\n",
      WithThousandsSep(filters.pairs_considered).c_str(),
      WithThousandsSep(filters.pruned_role).c_str(),
      WithThousandsSep(filters.pruned_strl).c_str(),
      WithThousandsSep(filters.pruned_segl).c_str(),
      WithThousandsSep(filters.pruned_segi).c_str(),
      WithThousandsSep(filters.pruned_segd).c_str(),
      WithThousandsSep(filters.empty_overlap).c_str(),
      WithThousandsSep(filters.emitted).c_str());
  os << StrFormat(
      "  shuffle: filtering %s (dup %.2fx), verification %s | kernel %s | "
      "wall %.1f ms",
      HumanBytes(filtering_job.shuffle_bytes).c_str(),
      filtering_job.DuplicationFactor(),
      HumanBytes(verification_job.shuffle_bytes).c_str(),
      filtering_job.join_kernel.empty() ? "?"
                                        : filtering_job.join_kernel.c_str(),
      total_wall_ms);
  uint64_t spilled = 0;
  uint32_t runs = 0;
  for (const mr::JobMetrics& j : AllJobs()) {
    spilled += j.spilled_bytes;
    runs += j.spill_runs;
  }
  if (runs > 0) {
    os << StrFormat("\n  spill: %s in %u runs", HumanBytes(spilled).c_str(),
                    runs);
  }
  if (tuning.enabled) {
    for (const std::string& line : tuning.lines) {
      os << "\n  auto: " << line;
    }
  }
  return os.str();
}

Result<FsJoinOutput> FsJoin::Run(const Corpus& corpus) const {
  FSJOIN_RETURN_NOT_OK(config_.Validate());
  WallTimer timer;

  std::unique_ptr<exec::ExecutionBackend> backend =
      exec::MakeBackend(config_.exec);

  FsJoinOutput output;
  output.report.config = config_;
  output.report.backend = backend->kind();

  mr::Dataset input = MakeCorpusDataset(corpus);

  // --- Plan 1: ordering -------------------------------------------------
  mr::JobConfig ordering_cfg = MakeOrderingJobConfig(
      config_.exec.num_map_tasks, config_.exec.num_reduce_tasks);
  exec::Plan ordering_plan("ordering");
  exec::StageHints ordering_hints;
  ordering_hints.task_factory = ordering_cfg.task_factory;
  ordering_hints.task_payload = ordering_cfg.task_payload;
  ordering_plan
      .FlatMap("tokenize", ordering_cfg.mapper_factory)
      .GroupByKey("ordering", ordering_cfg.reducer_factory,
                  ordering_cfg.partitioner, ordering_cfg.combiner_factory,
                  std::move(ordering_hints));
  FSJOIN_ASSIGN_OR_RETURN(mr::Dataset freq_out,
                          backend->Execute(ordering_plan, input));
  FSJOIN_ASSIGN_OR_RETURN(
      GlobalOrder order,
      BuildGlobalOrderFromJobOutput(freq_out, corpus.dictionary.size()));
  auto shared_order = std::make_shared<const GlobalOrder>(std::move(order));

  // --- Pivot selection (driver-side, like the paper's setup() phase) ----
  auto filtering_ctx = std::make_shared<FilteringContext>();
  filtering_ctx->config = config_;
  filtering_ctx->order = shared_order;
  if (config_.exec.parallel_fragment_join) {
    // One pool for the whole run: morsels steal work across fragments, so
    // a skewed fragment is consumed by every worker. With num_threads == 0
    // ParallelFor runs inline (deterministic-debug mode).
    filtering_ctx->join_pool =
        std::make_unique<ThreadPool>(config_.exec.num_threads);
  }
  uint32_t horizontal_t = config_.num_horizontal_partitions;
  if (config_.exec.auto_tune) {
    // --auto (DESIGN.md §5i): sample-driven pivot refinement, horizontal-t
    // + skew-split choice, and per-fragment method/kernel decisions in the
    // reducers. Pinned knobs keep their configured value; every override
    // and resolved choice lands in report.tuning.
    FsJoinReport::TuneLog& log = output.report.tuning;
    log.enabled = true;
    tune::TuneOptions topt;
    topt.sample_rate = config_.exec.tune_sample_rate;
    topt.seed = config_.seed;
    topt.num_fragments = config_.num_vertical_partitions;
    topt.function = config_.function;
    topt.theta = config_.theta;
    topt.rs_boundary = config_.rs_boundary;
    tune::TunePlan plan = tune::PlanTuning(corpus, *shared_order, topt);
    log.sample_rate = topt.sample_rate > 0 ? topt.sample_rate
                                           : tune::kDefaultSampleRate;
    log.sampled_records = plan.sampled_records;
    log.total_records = plan.total_records;
    log.lines = std::move(plan.log_lines);
    if (config_.pinned.pivot_strategy) {
      filtering_ctx->pivots =
          SelectPivots(*shared_order, config_.pivot_strategy,
                       config_.num_vertical_partitions - 1, config_.seed);
      log.lines.push_back(
          StrFormat("override: pivot strategy pinned to %s, refinement "
                    "skipped",
                    PivotStrategyName(config_.pivot_strategy)));
    } else {
      filtering_ctx->pivots = std::move(plan.pivots);
    }
    if (config_.pinned.horizontal) {
      log.lines.push_back(StrFormat(
          "override: horizontal pinned to t=%u, skew splitting off",
          config_.num_horizontal_partitions));
    } else {
      horizontal_t = plan.horizontal_t;
      if (horizontal_t > 0) {
        filtering_ctx->split_fragment = std::move(plan.split_fragment);
      }
    }
    filtering_ctx->auto_choose_method = !config_.pinned.join_method;
    filtering_ctx->auto_choose_kernel = !config_.pinned.kernel;
    if (config_.pinned.join_method) {
      log.lines.push_back(
          StrFormat("override: join method pinned to %s",
                    JoinMethodName(config_.join_method)));
    }
    if (config_.pinned.kernel) {
      log.lines.push_back(
          StrFormat("override: kernel pinned to %s",
                    exec::KernelModeName(config_.exec.kernel)));
    }
  } else {
    filtering_ctx->pivots =
        SelectPivots(*shared_order, config_.pivot_strategy,
                     config_.num_vertical_partitions > 0
                         ? config_.num_vertical_partitions - 1
                         : 0,
                     config_.seed);
  }
  if (horizontal_t > 0) {
    // Record sizes are ordering-invariant, so length pivots come straight
    // from the corpus token counts — no OrderedRecord materialization.
    std::vector<uint32_t> lengths;
    lengths.reserve(corpus.records.size());
    for (const Record& rec : corpus.records) {
      lengths.push_back(static_cast<uint32_t>(rec.tokens.size()));
    }
    filtering_ctx->horizontal = HorizontalScheme(
        SelectLengthPivotsFromLengths(std::move(lengths), horizontal_t,
                                      config_.function, config_.theta),
        config_.function, config_.theta);
  }
  output.report.pivots = filtering_ctx->pivots;
  output.report.length_pivots = filtering_ctx->horizontal.pivots();

  // --- Plan 2: filtering + verification ----------------------------------
  // On the MR backend each GroupByKey materializes as one job (the paper's
  // substrate); on the fused backend both shuffles run in one pipeline with
  // no intermediate DFS round-trip.
  auto verification_ctx = std::make_shared<VerificationContext>();
  verification_ctx->config = config_;
  mr::JobConfig filtering_cfg = MakeFilteringJobConfig(filtering_ctx);
  mr::JobConfig verification_cfg = MakeVerificationJobConfig(verification_ctx);
  exec::Plan join_plan("join");
  exec::StageHints filtering_hints;
  filtering_hints.side = filtering_cfg.side;
  exec::StageHints verification_hints;
  verification_hints.side = verification_cfg.side;
  join_plan
      .FlatMap("vertical-split", filtering_cfg.mapper_factory)
      .GroupByKey("filtering", filtering_cfg.reducer_factory,
                  filtering_cfg.partitioner, nullptr,
                  std::move(filtering_hints))
      .GroupByKey("verification", verification_cfg.reducer_factory, nullptr,
                  nullptr, std::move(verification_hints));
  FSJOIN_ASSIGN_OR_RETURN(mr::Dataset results_out,
                          backend->Execute(join_plan, input));
  FSJOIN_ASSIGN_OR_RETURN(output.pairs, DecodeJoinResults(results_out));

  const std::vector<mr::JobMetrics>& history = backend->history();
  output.report.ordering_job = history[0];
  output.report.filtering_job = history[1];
  output.report.verification_job = history[2];
  // Self-describing A/B runs: record which kernel pipeline the filtering
  // reducers actually used, with the ISA the auto mode resolved to. Under
  // --auto the reducers choose per fragment, so the string becomes the
  // decision histogram instead of a single mode.
  if (config_.exec.auto_tune && (filtering_ctx->auto_choose_method ||
                                 filtering_ctx->auto_choose_kernel)) {
    std::string histogram;
    for (int m = 0; m < 3; ++m) {
      if (filtering_ctx->auto_method_counts[m] == 0) continue;
      histogram += StrFormat(
          "%s%s:%llu", histogram.empty() ? "" : ",",
          JoinMethodName(static_cast<JoinMethod>(m)),
          static_cast<unsigned long long>(
              filtering_ctx->auto_method_counts[m]));
    }
    histogram += "|";
    bool first = true;
    for (int k = 0; k < 4; ++k) {
      if (filtering_ctx->auto_kernel_counts[k] == 0) continue;
      histogram += StrFormat(
          "%s%s:%llu", first ? "" : ",",
          exec::KernelModeName(static_cast<exec::KernelMode>(k)),
          static_cast<unsigned long long>(
              filtering_ctx->auto_kernel_counts[k]));
      first = false;
    }
    output.report.filtering_job.join_kernel = StrFormat(
        "auto{%s}[%s]", histogram.c_str(), SimdIsaName(DetectedSimdIsa()));
    output.report.tuning.lines.push_back(
        StrFormat("fragments: %s", histogram.c_str()));
  } else {
    output.report.filtering_job.join_kernel = StrFormat(
        "%s[%s]",
        exec::KernelModeName(exec::ResolveKernelMode(config_.exec.kernel)),
        SimdIsaName(DetectedSimdIsa()));
  }
  output.report.flow_pipelines = backend->flow_history();
  output.report.filters = filtering_ctx->totals;
  output.report.candidate_pairs = verification_ctx->candidate_pairs;
  output.report.result_pairs = output.pairs.size();
  if (config_.collect_partial_overlaps) {
    output.partial_overlaps = std::move(filtering_ctx->captured_partials);
    // Reducer completion order depends on threading; sort canonically so the
    // capture is deterministic for a fixed corpus and config.
    std::sort(output.partial_overlaps.begin(), output.partial_overlaps.end(),
              [](const PartialOverlap& x, const PartialOverlap& y) {
                if (x.a != y.a) return x.a < y.a;
                if (x.b != y.b) return x.b < y.b;
                if (x.overlap != y.overlap) return x.overlap < y.overlap;
                if (x.size_a != y.size_a) return x.size_a < y.size_a;
                return x.size_b < y.size_b;
              });
  }
  output.report.total_wall_ms = timer.ElapsedMillis();
  return output;
}

Corpus MergeJoinInput(const JoinInput& input) {
  Corpus merged;
  merged.records.reserve(input.r.records.size() + input.s.records.size());
  // R's dictionary first, in token-id order: the union mapping is the
  // identity on R, so probe-side token ids survive the merge unchanged even
  // when the vocabularies are disjoint.
  for (TokenId t = 0; t < static_cast<TokenId>(input.r.dictionary.size());
       ++t) {
    merged.dictionary.Intern(input.r.dictionary.TokenString(t));
  }
  for (const Record& rec : input.r.records) {
    Record copy;
    copy.id = static_cast<RecordId>(merged.records.size());
    copy.tokens = rec.tokens;  // sorted unique by Corpus invariant
    for (TokenId t : copy.tokens) merged.dictionary.AddFrequency(t, 1);
    merged.records.push_back(std::move(copy));
  }
  for (const Record& rec : input.s.records) {
    Record copy;
    copy.id = static_cast<RecordId>(merged.records.size());
    copy.tokens.reserve(rec.tokens.size());
    for (TokenId t : rec.tokens) {
      copy.tokens.push_back(
          merged.dictionary.Intern(input.s.dictionary.TokenString(t)));
    }
    std::sort(copy.tokens.begin(), copy.tokens.end());
    copy.tokens.erase(std::unique(copy.tokens.begin(), copy.tokens.end()),
                      copy.tokens.end());
    for (TokenId t : copy.tokens) merged.dictionary.AddFrequency(t, 1);
    merged.records.push_back(std::move(copy));
  }
  return merged;
}

Result<FsJoinOutput> FsJoin::Run(const JoinInput& input) const {
  FsJoinConfig config = config_;
  config.rs_boundary = static_cast<RecordId>(input.r.records.size());
  return FsJoin(std::move(config)).Run(MergeJoinInput(input));
}

Result<FsJoinOutput> FsJoinRS(const Corpus& r, const Corpus& s,
                              FsJoinConfig config) {
  return FsJoin(std::move(config)).Run(JoinInput{r, s});
}

}  // namespace fsjoin
