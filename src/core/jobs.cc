#include "core/jobs.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/segments.h"
#include "util/serde.h"

namespace fsjoin {

namespace {

// ---- Ordering job ------------------------------------------------------

class OrderingMapper : public mr::Mapper {
 public:
  Status Map(const mr::KeyValue& record, mr::Emitter* out) override {
    RecordId rid = 0;
    std::vector<TokenId> tokens;
    FSJOIN_RETURN_NOT_OK(DecodeCorpusRecord(record, &rid, &tokens));
    std::string one;
    PutVarint64(&one, 1);
    for (TokenId t : tokens) {
      std::string key;
      PutFixed32BE(&key, t);
      out->Emit(std::move(key), one);
    }
    return Status::OK();
  }
};

class SumReducer : public mr::Reducer {
 public:
  Status Reduce(std::string_view key, mr::ValueList values,
                mr::Emitter* out) override {
    uint64_t total = 0;
    for (std::string_view v : values) {
      Decoder dec(v);
      uint64_t x = 0;
      FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&x));
      total += x;
    }
    std::string value;
    PutVarint64(&value, total);
    out->Emit(key, value);
    return Status::OK();
  }
};

// ---- Filtering job -----------------------------------------------------

class FilteringMapper : public mr::Mapper {
 public:
  explicit FilteringMapper(std::shared_ptr<FilteringContext> ctx)
      : ctx_(std::move(ctx)) {}

  Status Map(const mr::KeyValue& record, mr::Emitter* out) override {
    RecordId rid = 0;
    std::vector<TokenId> tokens;
    FSJOIN_RETURN_NOT_OK(DecodeCorpusRecord(record, &rid, &tokens));

    // Sort the record by the global ordering (paper: mapper-side sort).
    OrderedRecord ordered;
    ordered.id = rid;
    ordered.tokens.reserve(tokens.size());
    for (TokenId t : tokens) {
      if (t >= ctx_->order->NumTokens()) {
        return Status::Internal("token id outside the global ordering");
      }
      ordered.tokens.push_back(ctx_->order->RankOf(t));
    }
    std::sort(ordered.tokens.begin(), ordered.tokens.end());

    const std::vector<uint32_t> groups =
        ctx_->horizontal.GroupsOf(static_cast<uint32_t>(ordered.Size()));
    SegmentSplit split = SplitIntoSegments(ordered, ctx_->pivots);
    for (uint32_t h : groups) {
      for (size_t i = 0; i < split.segments.size(); ++i) {
        std::string key;
        PutFixed32BE(&key, h);
        PutFixed32BE(&key, split.fragment_ids[i]);
        std::string value;
        EncodeSegment(split.segments[i], &value);
        out->Emit(std::move(key), std::move(value));
      }
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<FilteringContext> ctx_;
};

class FilteringReducer : public mr::Reducer {
 public:
  explicit FilteringReducer(std::shared_ptr<FilteringContext> ctx)
      : ctx_(std::move(ctx)) {}

  Status Reduce(std::string_view key, mr::ValueList values,
                mr::Emitter* out) override {
    Decoder key_dec(key);
    uint32_t group = 0, fragment = 0;
    FSJOIN_RETURN_NOT_OK(key_dec.GetFixed32BE(&group));
    FSJOIN_RETURN_NOT_OK(key_dec.GetFixed32BE(&fragment));

    // Columnar build: shuffle values decode straight into one flat token
    // arena — no per-segment token vector is ever allocated.
    SegmentBatch batch;
    batch.Reserve(values.size(), 0);
    for (std::string_view v : values) {
      FSJOIN_RETURN_NOT_OK(batch.AppendEncoded(v));
    }
    batch.Seal();

    FragmentJoinOptions opts;
    const FsJoinConfig& cfg = ctx_->config;
    opts.function = cfg.function;
    opts.theta = cfg.theta;
    opts.method = cfg.join_method;
    opts.aggressive_segment_prefix = cfg.aggressive_segment_prefix;
    opts.use_length_filter = cfg.use_length_filter;
    opts.use_segment_length_filter = cfg.use_segment_length_filter;
    opts.use_segment_intersection_filter = cfg.use_segment_intersection_filter;
    opts.use_segment_difference_filter = cfg.use_segment_difference_filter;
    opts.kernel = cfg.exec.kernel;

    const HorizontalScheme* horizontal = &ctx_->horizontal;
    const std::optional<RecordId> rs_boundary = cfg.rs_boundary;
    opts.pair_allowed = [group, horizontal, rs_boundary](
                            const SegmentView& a, const SegmentView& b) {
      if (a.rid == b.rid) return false;
      if (rs_boundary.has_value() &&
          (a.rid < *rs_boundary) == (b.rid < *rs_boundary)) {
        return false;  // R-S join: pairs must straddle the boundary
      }
      return horizontal->ShouldJoinInGroup(group, a.record_size,
                                           b.record_size);
    };
    if (ctx_->join_pool != nullptr && cfg.exec.parallel_fragment_join) {
      opts.morsel_pool = ctx_->join_pool.get();
      opts.morsel_size = cfg.exec.join_morsel_size;
    }

    std::vector<PartialOverlap> partials;
    FilterCounters counters;
    JoinFragmentBatch(batch, opts, &partials, &counters);
    {
      std::lock_guard<std::mutex> lock(ctx_->mu);
      ctx_->totals.Add(counters);
      if (cfg.collect_partial_overlaps) {
        ctx_->captured_partials.insert(ctx_->captured_partials.end(),
                                       partials.begin(), partials.end());
      }
    }

    for (const PartialOverlap& p : partials) {
      std::string out_key, out_value;
      EncodePartialOverlap(p, &out_key, &out_value);
      out->Emit(std::move(out_key), std::move(out_value));
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<FilteringContext> ctx_;
};

// ---- Verification job --------------------------------------------------

class IdentityMapper : public mr::Mapper {
 public:
  Status Map(const mr::KeyValue& record, mr::Emitter* out) override {
    out->Emit(record.key, record.value);
    return Status::OK();
  }
};

class VerificationReducer : public mr::Reducer {
 public:
  explicit VerificationReducer(std::shared_ptr<VerificationContext> ctx)
      : ctx_(std::move(ctx)) {}

  Status Reduce(std::string_view key, mr::ValueList values,
                mr::Emitter* out) override {
    uint64_t total_overlap = 0;
    uint64_t size_a = 0, size_b = 0;
    for (std::string_view v : values) {
      Decoder dec(v);
      uint64_t c = 0, la = 0, lb = 0;
      FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&c));
      FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&la));
      FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&lb));
      total_overlap += c;
      size_a = la;
      size_b = lb;
    }
    ++local_candidates_;
    const FsJoinConfig& cfg = ctx_->config;
    if (PassesThreshold(cfg.function, total_overlap, size_a, size_b,
                        cfg.theta)) {
      double sim =
          ComputeSimilarity(cfg.function, total_overlap, size_a, size_b);
      std::string value;
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(sim));
      std::memcpy(&bits, &sim, sizeof(bits));
      PutFixed64BE(&value, bits);
      out->Emit(key, std::move(value));
    }
    return Status::OK();
  }

  Status Finish(mr::Emitter* out) override {
    (void)out;
    std::lock_guard<std::mutex> lock(ctx_->mu);
    ctx_->candidate_pairs += local_candidates_;
    return Status::OK();
  }

 private:
  std::shared_ptr<VerificationContext> ctx_;
  uint64_t local_candidates_ = 0;
};

}  // namespace

mr::Dataset MakeCorpusDataset(const Corpus& corpus) {
  mr::Dataset dataset;
  dataset.reserve(corpus.records.size());
  for (const Record& rec : corpus.records) {
    mr::KeyValue kv;
    PutFixed32BE(&kv.key, rec.id);
    PutUint32Vector(&kv.value, rec.tokens);
    dataset.push_back(std::move(kv));
  }
  return dataset;
}

Status DecodeCorpusRecord(const mr::KeyValue& kv, RecordId* rid,
                          std::vector<TokenId>* tokens) {
  Decoder key_dec(kv.key);
  FSJOIN_RETURN_NOT_OK(key_dec.GetFixed32BE(rid));
  Decoder value_dec(kv.value);
  FSJOIN_RETURN_NOT_OK(value_dec.GetUint32Vector(tokens));
  return Status::OK();
}

mr::JobConfig MakeOrderingJobConfig(uint32_t num_map_tasks,
                                    uint32_t num_reduce_tasks) {
  mr::JobConfig config;
  config.name = "ordering";
  config.num_map_tasks = num_map_tasks;
  config.num_reduce_tasks = num_reduce_tasks;
  config.mapper_factory = [] { return std::make_unique<OrderingMapper>(); };
  config.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  config.combiner_factory = [] { return std::make_unique<SumReducer>(); };
  return config;
}

Result<GlobalOrder> BuildGlobalOrderFromJobOutput(const mr::Dataset& output,
                                                  size_t vocab_size) {
  std::vector<uint64_t> frequency(vocab_size, 0);
  for (const mr::KeyValue& kv : output) {
    Decoder key_dec(kv.key);
    uint32_t token = 0;
    FSJOIN_RETURN_NOT_OK(key_dec.GetFixed32BE(&token));
    if (token >= vocab_size) {
      return Status::Internal("ordering output token outside vocabulary");
    }
    Decoder value_dec(kv.value);
    uint64_t count = 0;
    FSJOIN_RETURN_NOT_OK(value_dec.GetVarint64(&count));
    frequency[token] = count;
  }
  return GlobalOrder::FromFrequencies(std::move(frequency));
}

uint32_t FragmentPartitioner::Partition(std::string_view key,
                                        uint32_t num_partitions) const {
  Decoder dec(key);
  uint32_t h = 0, v = 0;
  if (!dec.GetFixed32BE(&h).ok() || !dec.GetFixed32BE(&v).ok()) {
    return static_cast<uint32_t>(Fnv1a64(key) % num_partitions);
  }
  return (h * num_vertical_ + v) % num_partitions;
}

mr::JobConfig MakeFilteringJobConfig(
    const std::shared_ptr<FilteringContext>& context) {
  mr::JobConfig config;
  config.name = "filtering";
  config.num_map_tasks = context->config.exec.num_map_tasks;
  config.num_reduce_tasks = context->config.exec.num_reduce_tasks;
  config.mapper_factory = [context] {
    return std::make_unique<FilteringMapper>(context);
  };
  config.reducer_factory = [context] {
    return std::make_unique<FilteringReducer>(context);
  };
  config.partitioner = std::make_shared<FragmentPartitioner>(
      context->config.num_vertical_partitions);
  return config;
}

mr::JobConfig MakeVerificationJobConfig(
    const std::shared_ptr<VerificationContext>& context) {
  mr::JobConfig config;
  config.name = "verification";
  config.num_map_tasks = context->config.exec.num_map_tasks;
  config.num_reduce_tasks = context->config.exec.num_reduce_tasks;
  config.mapper_factory = [] { return std::make_unique<IdentityMapper>(); };
  // No combiner: a pair's partial overlaps come from different fragments
  // (different filtering reducers), so map-side splits of the partials
  // dataset almost never hold two records of the same pair — a combiner
  // would only add sort cost.
  config.reducer_factory = [context] {
    return std::make_unique<VerificationReducer>(context);
  };
  return config;
}

Result<JoinResultSet> DecodeJoinResults(const mr::Dataset& output) {
  JoinResultSet results;
  results.reserve(output.size());
  for (const mr::KeyValue& kv : output) {
    Decoder key_dec(kv.key);
    uint32_t a = 0, b = 0;
    FSJOIN_RETURN_NOT_OK(key_dec.GetFixed32BE(&a));
    FSJOIN_RETURN_NOT_OK(key_dec.GetFixed32BE(&b));
    Decoder value_dec(kv.value);
    uint64_t bits = 0;
    FSJOIN_RETURN_NOT_OK(value_dec.GetFixed64BE(&bits));
    double sim = 0.0;
    std::memcpy(&sim, &bits, sizeof(sim));
    results.push_back(SimilarPair{a, b, sim});
  }
  NormalizeResult(&results);
  return results;
}

void EncodePartialOverlap(const PartialOverlap& partial, std::string* key,
                          std::string* value) {
  PutFixed32BE(key, partial.a);
  PutFixed32BE(key, partial.b);
  PutVarint64(value, partial.overlap);
  PutVarint64(value, partial.size_a);
  PutVarint64(value, partial.size_b);
}

}  // namespace fsjoin
