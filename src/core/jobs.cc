#include "core/jobs.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/segments.h"
#include "mr/task.h"
#include "util/serde.h"

namespace fsjoin {

namespace {

// ---- Ordering job ------------------------------------------------------

class OrderingMapper : public mr::Mapper {
 public:
  Status Map(const mr::KeyValue& record, mr::Emitter* out) override {
    RecordId rid = 0;
    std::vector<TokenId> tokens;
    FSJOIN_RETURN_NOT_OK(DecodeCorpusRecord(record, &rid, &tokens));
    std::string one;
    PutVarint64(&one, 1);
    for (TokenId t : tokens) {
      std::string key;
      PutFixed32BE(&key, t);
      out->Emit(std::move(key), one);
    }
    return Status::OK();
  }
};

class SumReducer : public mr::Reducer {
 public:
  Status Reduce(std::string_view key, mr::ValueList values,
                mr::Emitter* out) override {
    uint64_t total = 0;
    for (std::string_view v : values) {
      Decoder dec(v);
      uint64_t x = 0;
      FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&x));
      total += x;
    }
    std::string value;
    PutVarint64(&value, total);
    out->Emit(key, value);
    return Status::OK();
  }
};

// ---- Filtering job -----------------------------------------------------

class FilteringMapper : public mr::Mapper {
 public:
  explicit FilteringMapper(std::shared_ptr<FilteringContext> ctx)
      : ctx_(std::move(ctx)) {}

  Status Map(const mr::KeyValue& record, mr::Emitter* out) override {
    RecordId rid = 0;
    std::vector<TokenId> tokens;
    FSJOIN_RETURN_NOT_OK(DecodeCorpusRecord(record, &rid, &tokens));

    // Sort the record by the global ordering (paper: mapper-side sort).
    OrderedRecord ordered;
    ordered.id = rid;
    ordered.tokens.reserve(tokens.size());
    for (TokenId t : tokens) {
      if (t >= ctx_->order->NumTokens()) {
        return Status::Internal("token id outside the global ordering");
      }
      ordered.tokens.push_back(ctx_->order->RankOf(t));
    }
    std::sort(ordered.tokens.begin(), ordered.tokens.end());

    const uint32_t len = static_cast<uint32_t>(ordered.Size());
    SegmentSplit split = SplitIntoSegments(ordered, ctx_->pivots);
    if (ctx_->split_fragment.empty()) {
      const std::vector<uint32_t> groups = ctx_->horizontal.GroupsOf(len);
      for (uint32_t h : groups) {
        for (size_t i = 0; i < split.segments.size(); ++i) {
          std::string key;
          PutFixed32BE(&key, h);
          PutFixed32BE(&key, split.fragment_ids[i]);
          std::string value;
          EncodeSegment(split.segments[i], &value);
          out->Emit(std::move(key), std::move(value));
        }
      }
      return Status::OK();
    }
    // Skew-triggered splitting (--auto): only fragments flagged heavy pay
    // the horizontal duplication; light fragments route to group 0, where
    // the reducer joins every pair (no band dedup needed — one group means
    // one chance per pair).
    std::vector<uint32_t> groups;  // computed lazily for the first heavy hit
    for (size_t i = 0; i < split.segments.size(); ++i) {
      const uint32_t v = split.fragment_ids[i];
      std::string value;
      EncodeSegment(split.segments[i], &value);
      if (v < ctx_->split_fragment.size() && ctx_->split_fragment[v] != 0) {
        if (groups.empty()) groups = ctx_->horizontal.GroupsOf(len);
        for (uint32_t h : groups) {
          std::string key;
          PutFixed32BE(&key, h);
          PutFixed32BE(&key, v);
          out->Emit(std::move(key), value);
        }
      } else {
        std::string key;
        PutFixed32BE(&key, uint32_t{0});
        PutFixed32BE(&key, v);
        out->Emit(std::move(key), std::move(value));
      }
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<FilteringContext> ctx_;
};

class FilteringReducer : public mr::Reducer {
 public:
  explicit FilteringReducer(std::shared_ptr<FilteringContext> ctx)
      : ctx_(std::move(ctx)) {}

  Status Reduce(std::string_view key, mr::ValueList values,
                mr::Emitter* out) override {
    Decoder key_dec(key);
    uint32_t group = 0, fragment = 0;
    FSJOIN_RETURN_NOT_OK(key_dec.GetFixed32BE(&group));
    FSJOIN_RETURN_NOT_OK(key_dec.GetFixed32BE(&fragment));

    // Columnar build: shuffle values decode straight into one flat token
    // arena — no per-segment token vector is ever allocated.
    SegmentBatch batch;
    batch.Reserve(values.size(), 0);
    for (std::string_view v : values) {
      FSJOIN_RETURN_NOT_OK(batch.AppendEncoded(v));
    }
    batch.Seal();

    FragmentJoinOptions opts;
    const FsJoinConfig& cfg = ctx_->config;
    if (cfg.rs_boundary.has_value()) {
      // Side-tag the fragment so the join loops enumerate only cross-side
      // pairs (probe R rows against build S rows; see DESIGN.md §5k).
      batch.TagSides(*cfg.rs_boundary);
      opts.rs_boundary = cfg.rs_boundary;
    }
    opts.function = cfg.function;
    opts.theta = cfg.theta;
    opts.method = cfg.join_method;
    opts.aggressive_segment_prefix = cfg.aggressive_segment_prefix;
    opts.use_length_filter = cfg.use_length_filter;
    opts.use_segment_length_filter = cfg.use_segment_length_filter;
    opts.use_segment_intersection_filter = cfg.use_segment_intersection_filter;
    opts.use_segment_difference_filter = cfg.use_segment_difference_filter;
    opts.kernel = cfg.exec.kernel;
    if (cfg.exec.auto_tune &&
        (ctx_->auto_choose_method || ctx_->auto_choose_kernel) &&
        !batch.empty()) {
      // Per-fragment decision at Seal time: the shape aggregates are
      // permutation-invariant over the fragment's segments, so the choice
      // is identical on every backend, runner and thread count.
      tune::FragmentShape shape;
      shape.num_segments = batch.size();
      shape.total_tokens = batch.total_tokens();
      for (uint32_t i = 0; i < batch.size(); ++i) {
        shape.max_segment_len = std::max(shape.max_segment_len,
                                         batch.length(i));
      }
      if (batch.side_tagged()) {
        // R-S fragments are asymmetric: the cost model sees probe x build,
        // not n-choose-2 (tune/decision.h).
        shape.probe_segments =
            static_cast<uint32_t>(batch.probe_rows().size());
        shape.build_segments =
            static_cast<uint32_t>(batch.build_rows().size());
      }
      const tune::FragmentPlan plan =
          tune::ChooseFragmentPlan(shape, ctx_->policy);
      if (ctx_->auto_choose_method) opts.method = plan.method;
      if (ctx_->auto_choose_kernel) opts.kernel = plan.kernel;
      std::lock_guard<std::mutex> lock(ctx_->mu);
      ++ctx_->auto_method_counts[static_cast<int>(opts.method)];
      ++ctx_->auto_kernel_counts[static_cast<int>(
          exec::ResolveKernelMode(opts.kernel))];
    }

    const HorizontalScheme* horizontal = &ctx_->horizontal;
    // Light fragments under skew-triggered splitting carry one length
    // group, so every pair is joined where it lands (see FilteringMapper).
    // Same-side R-S pairs need no rule here: the side-tagged join loops
    // never enumerate them in the first place.
    const bool use_scheme =
        ctx_->split_fragment.empty() ||
        (fragment < ctx_->split_fragment.size() &&
         ctx_->split_fragment[fragment] != 0);
    opts.pair_allowed = [group, horizontal, use_scheme](
                            const SegmentView& a, const SegmentView& b) {
      if (a.rid == b.rid) return false;
      if (!use_scheme) return true;
      return horizontal->ShouldJoinInGroup(group, a.record_size,
                                           b.record_size);
    };
    if (ctx_->join_pool != nullptr && cfg.exec.parallel_fragment_join) {
      opts.morsel_pool = ctx_->join_pool.get();
      opts.morsel_size = cfg.exec.join_morsel_size;
    }

    std::vector<PartialOverlap> partials;
    FilterCounters counters;
    JoinFragmentBatch(batch, opts, &partials, &counters);
    {
      std::lock_guard<std::mutex> lock(ctx_->mu);
      ctx_->totals.Add(counters);
      if (cfg.collect_partial_overlaps) {
        ctx_->captured_partials.insert(ctx_->captured_partials.end(),
                                       partials.begin(), partials.end());
      }
    }

    for (const PartialOverlap& p : partials) {
      std::string out_key, out_value;
      EncodePartialOverlap(p, &out_key, &out_value);
      out->Emit(std::move(out_key), std::move(out_value));
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<FilteringContext> ctx_;
};

// ---- Verification job --------------------------------------------------

class IdentityMapper : public mr::Mapper {
 public:
  Status Map(const mr::KeyValue& record, mr::Emitter* out) override {
    out->Emit(record.key, record.value);
    return Status::OK();
  }
};

class VerificationReducer : public mr::Reducer {
 public:
  explicit VerificationReducer(std::shared_ptr<VerificationContext> ctx)
      : ctx_(std::move(ctx)) {}

  Status Reduce(std::string_view key, mr::ValueList values,
                mr::Emitter* out) override {
    uint64_t total_overlap = 0;
    uint64_t size_a = 0, size_b = 0;
    for (std::string_view v : values) {
      Decoder dec(v);
      uint64_t c = 0, la = 0, lb = 0;
      FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&c));
      FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&la));
      FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&lb));
      total_overlap += c;
      size_a = la;
      size_b = lb;
    }
    ++local_candidates_;
    const FsJoinConfig& cfg = ctx_->config;
    if (PassesThreshold(cfg.function, total_overlap, size_a, size_b,
                        cfg.theta)) {
      double sim =
          ComputeSimilarity(cfg.function, total_overlap, size_a, size_b);
      std::string value;
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(sim));
      std::memcpy(&bits, &sim, sizeof(bits));
      PutFixed64BE(&value, bits);
      out->Emit(key, std::move(value));
    }
    return Status::OK();
  }

  Status Finish(mr::Emitter* out) override {
    (void)out;
    std::lock_guard<std::mutex> lock(ctx_->mu);
    ctx_->candidate_pairs += local_candidates_;
    return Status::OK();
  }

 private:
  std::shared_ptr<VerificationContext> ctx_;
  uint64_t local_candidates_ = 0;
};

// ---- Task factories and side channels ----------------------------------

/// The ordering job's operators are stateless and parameter-free, so its
/// tasks can be described by a registered name and re-executed by a
/// re-execed --worker-task process (mr/task.h). The filtering and
/// verification jobs capture driver-built shared contexts in their
/// closures; their tasks stay fork-only and report context mutations
/// through the side channels below.
[[maybe_unused]] const bool kOrderingFactoryRegistered =
    mr::RegisterTaskFactory(
        "core.ordering",
        [](const std::string&) -> Result<mr::TaskFactories> {
          mr::TaskFactories factories;
          factories.mapper = [] { return std::make_unique<OrderingMapper>(); };
          factories.reducer = [] { return std::make_unique<SumReducer>(); };
          factories.combiner = [] { return std::make_unique<SumReducer>(); };
          return factories;
        });

/// Fork-boundary channel for FilteringContext: a child task starts from
/// zeroed counters (and no inherited morsel pool — its threads do not
/// survive fork; joins run serially with byte-identical results), captures
/// its deltas as bytes, and the scheduler merges them into the parent's
/// context exactly once per logical task.
mr::TaskSideChannel FilteringSideChannel(
    std::shared_ptr<FilteringContext> ctx) {
  mr::TaskSideChannel side;
  side.reset = [ctx] {
    // Leak the pool, never destroy it: ~ThreadPool joins worker threads
    // that do not exist in a forked child, deadlocking forever on their
    // inherited thread descriptors. The memory is a COW page the child's
    // _exit reclaims; a null pool makes morsel joins run serially.
    (void)ctx->join_pool.release();
    ctx->totals = FilterCounters{};
    ctx->captured_partials.clear();
    for (uint64_t& c : ctx->auto_method_counts) c = 0;
    for (uint64_t& c : ctx->auto_kernel_counts) c = 0;
  };
  side.capture = [ctx]() -> std::string {
    std::string bytes;
    std::lock_guard<std::mutex> lock(ctx->mu);
    const FilterCounters& c = ctx->totals;
    PutVarint64(&bytes, c.pairs_considered);
    PutVarint64(&bytes, c.pruned_role);
    PutVarint64(&bytes, c.pruned_strl);
    PutVarint64(&bytes, c.pruned_segl);
    PutVarint64(&bytes, c.pruned_segi);
    PutVarint64(&bytes, c.pruned_segd);
    PutVarint64(&bytes, c.empty_overlap);
    PutVarint64(&bytes, c.emitted);
    for (uint64_t count : ctx->auto_method_counts) PutVarint64(&bytes, count);
    for (uint64_t count : ctx->auto_kernel_counts) PutVarint64(&bytes, count);
    PutVarint64(&bytes, ctx->captured_partials.size());
    for (const PartialOverlap& p : ctx->captured_partials) {
      PutVarint32(&bytes, p.a);
      PutVarint32(&bytes, p.b);
      PutVarint32(&bytes, p.size_a);
      PutVarint32(&bytes, p.size_b);
      PutVarint64(&bytes, p.overlap);
    }
    return bytes;
  };
  side.merge = [ctx](const std::string& bytes) -> Status {
    Decoder dec(bytes);
    FilterCounters c;
    FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&c.pairs_considered));
    FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&c.pruned_role));
    FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&c.pruned_strl));
    FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&c.pruned_segl));
    FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&c.pruned_segi));
    FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&c.pruned_segd));
    FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&c.empty_overlap));
    FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&c.emitted));
    uint64_t method_counts[3] = {0, 0, 0};
    uint64_t kernel_counts[4] = {0, 0, 0, 0};
    for (uint64_t& count : method_counts) {
      FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&count));
    }
    for (uint64_t& count : kernel_counts) {
      FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&count));
    }
    uint64_t num_partials = 0;
    FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&num_partials));
    std::vector<PartialOverlap> partials;
    partials.reserve(num_partials);
    for (uint64_t i = 0; i < num_partials; ++i) {
      PartialOverlap p;
      FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&p.a));
      FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&p.b));
      FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&p.size_a));
      FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&p.size_b));
      FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&p.overlap));
      partials.push_back(p);
    }
    if (!dec.done()) {
      return Status::Corruption("trailing bytes in filtering side state");
    }
    std::lock_guard<std::mutex> lock(ctx->mu);
    ctx->totals.Add(c);
    for (int i = 0; i < 3; ++i) ctx->auto_method_counts[i] += method_counts[i];
    for (int i = 0; i < 4; ++i) ctx->auto_kernel_counts[i] += kernel_counts[i];
    ctx->captured_partials.insert(ctx->captured_partials.end(),
                                  partials.begin(), partials.end());
    return Status::OK();
  };
  return side;
}

/// Fork-boundary channel for VerificationContext: candidate-pair count only.
mr::TaskSideChannel VerificationSideChannel(
    std::shared_ptr<VerificationContext> ctx) {
  mr::TaskSideChannel side;
  side.reset = [ctx] { ctx->candidate_pairs = 0; };
  side.capture = [ctx]() -> std::string {
    std::string bytes;
    std::lock_guard<std::mutex> lock(ctx->mu);
    PutVarint64(&bytes, ctx->candidate_pairs);
    return bytes;
  };
  side.merge = [ctx](const std::string& bytes) -> Status {
    Decoder dec(bytes);
    uint64_t count = 0;
    FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&count));
    if (!dec.done()) {
      return Status::Corruption("trailing bytes in verification side state");
    }
    std::lock_guard<std::mutex> lock(ctx->mu);
    ctx->candidate_pairs += count;
    return Status::OK();
  };
  return side;
}

}  // namespace

mr::Dataset MakeCorpusDataset(const Corpus& corpus) {
  mr::Dataset dataset;
  dataset.reserve(corpus.records.size());
  for (const Record& rec : corpus.records) {
    mr::KeyValue kv;
    PutFixed32BE(&kv.key, rec.id);
    PutUint32Vector(&kv.value, rec.tokens);
    dataset.push_back(std::move(kv));
  }
  return dataset;
}

Status DecodeCorpusRecord(const mr::KeyValue& kv, RecordId* rid,
                          std::vector<TokenId>* tokens) {
  Decoder key_dec(kv.key);
  FSJOIN_RETURN_NOT_OK(key_dec.GetFixed32BE(rid));
  Decoder value_dec(kv.value);
  FSJOIN_RETURN_NOT_OK(value_dec.GetUint32Vector(tokens));
  return Status::OK();
}

mr::JobConfig MakeOrderingJobConfig(uint32_t num_map_tasks,
                                    uint32_t num_reduce_tasks) {
  mr::JobConfig config;
  config.name = "ordering";
  config.num_map_tasks = num_map_tasks;
  config.num_reduce_tasks = num_reduce_tasks;
  config.mapper_factory = [] { return std::make_unique<OrderingMapper>(); };
  config.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  config.combiner_factory = [] { return std::make_unique<SumReducer>(); };
  // Stateless operators: tasks of this job can run via binary re-exec.
  config.task_factory = "core.ordering";
  return config;
}

Result<GlobalOrder> BuildGlobalOrderFromJobOutput(const mr::Dataset& output,
                                                  size_t vocab_size) {
  std::vector<uint64_t> frequency(vocab_size, 0);
  for (const mr::KeyValue& kv : output) {
    Decoder key_dec(kv.key);
    uint32_t token = 0;
    FSJOIN_RETURN_NOT_OK(key_dec.GetFixed32BE(&token));
    if (token >= vocab_size) {
      return Status::Internal("ordering output token outside vocabulary");
    }
    Decoder value_dec(kv.value);
    uint64_t count = 0;
    FSJOIN_RETURN_NOT_OK(value_dec.GetVarint64(&count));
    frequency[token] = count;
  }
  return GlobalOrder::FromFrequencies(std::move(frequency));
}

uint32_t FragmentPartitioner::Partition(std::string_view key,
                                        uint32_t num_partitions) const {
  Decoder dec(key);
  uint32_t h = 0, v = 0;
  if (!dec.GetFixed32BE(&h).ok() || !dec.GetFixed32BE(&v).ok()) {
    return static_cast<uint32_t>(Fnv1a64(key) % num_partitions);
  }
  return (h * num_vertical_ + v) % num_partitions;
}

mr::JobConfig MakeFilteringJobConfig(
    const std::shared_ptr<FilteringContext>& context) {
  mr::JobConfig config;
  config.name = "filtering";
  config.num_map_tasks = context->config.exec.num_map_tasks;
  config.num_reduce_tasks = context->config.exec.num_reduce_tasks;
  config.mapper_factory = [context] {
    return std::make_unique<FilteringMapper>(context);
  };
  config.reducer_factory = [context] {
    return std::make_unique<FilteringReducer>(context);
  };
  config.partitioner = std::make_shared<FragmentPartitioner>(
      context->config.num_vertical_partitions);
  config.side = FilteringSideChannel(context);
  return config;
}

mr::JobConfig MakeVerificationJobConfig(
    const std::shared_ptr<VerificationContext>& context) {
  mr::JobConfig config;
  config.name = "verification";
  config.num_map_tasks = context->config.exec.num_map_tasks;
  config.num_reduce_tasks = context->config.exec.num_reduce_tasks;
  config.mapper_factory = [] { return std::make_unique<IdentityMapper>(); };
  // No combiner: a pair's partial overlaps come from different fragments
  // (different filtering reducers), so map-side splits of the partials
  // dataset almost never hold two records of the same pair — a combiner
  // would only add sort cost.
  config.reducer_factory = [context] {
    return std::make_unique<VerificationReducer>(context);
  };
  config.side = VerificationSideChannel(context);
  return config;
}

Result<JoinResultSet> DecodeJoinResults(const mr::Dataset& output) {
  JoinResultSet results;
  results.reserve(output.size());
  for (const mr::KeyValue& kv : output) {
    Decoder key_dec(kv.key);
    uint32_t a = 0, b = 0;
    FSJOIN_RETURN_NOT_OK(key_dec.GetFixed32BE(&a));
    FSJOIN_RETURN_NOT_OK(key_dec.GetFixed32BE(&b));
    Decoder value_dec(kv.value);
    uint64_t bits = 0;
    FSJOIN_RETURN_NOT_OK(value_dec.GetFixed64BE(&bits));
    double sim = 0.0;
    std::memcpy(&sim, &bits, sizeof(sim));
    results.push_back(SimilarPair{a, b, sim});
  }
  NormalizeResult(&results);
  return results;
}

void EncodePartialOverlap(const PartialOverlap& partial, std::string* key,
                          std::string* value) {
  PutFixed32BE(key, partial.a);
  PutFixed32BE(key, partial.b);
  PutVarint64(value, partial.overlap);
  PutVarint64(value, partial.size_a);
  PutVarint64(value, partial.size_b);
}

}  // namespace fsjoin
