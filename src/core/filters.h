#ifndef FSJOIN_CORE_FILTERS_H_
#define FSJOIN_CORE_FILTERS_H_

#include <cstdint>

#include "core/segments.h"
#include "sim/similarity.h"

namespace fsjoin {

/// The paper's four filtering lemmas, in their *single-fragment* forms: each
/// reducer sees only its own fragment, so the unseen head/tail overlaps are
/// replaced by their extreme bounds (min for intersections, |Δsize| for
/// differences). As the lemma proofs show, the resulting conditions are
/// individually sufficient for sim < θ, which makes local pruning sound
/// (see DESIGN.md "Per-fragment filter soundness").
///
/// All functions return true when the pair can be *pruned*. The primary
/// forms take SegmentView (what the columnar join kernels hold); the
/// SegmentRecord overloads are convenience wrappers for row-oriented
/// callers and tests.

/// Lemma 1 (StrL-Filter): prune when the shorter record is too short to
/// reach θ with the longer one.
bool StrLengthPrunes(SimilarityFunction fn, double theta, uint32_t size_a,
                     uint32_t size_b);

/// Lemma 2 (SegL-Filter): prune when even a full overlap of the shorter
/// segment, plus the best-case head/tail overlaps, stays below the required
/// minimum overlap.
bool SegmentLengthPrunes(SimilarityFunction fn, double theta,
                         const SegmentView& a, const SegmentView& b);

/// Lemma 3 (SegI-Filter): as Lemma 2, but with the *actual* segment overlap
/// `seg_overlap` (strictly stronger; applied after the intersection is
/// computed).
bool SegmentIntersectionPrunes(SimilarityFunction fn, double theta,
                               const SegmentView& a, const SegmentView& b,
                               uint64_t seg_overlap);

/// Lemma 4 (SegD-Filter): prune when the segment symmetric difference,
/// plus the unavoidable head/tail differences, already exceeds the largest
/// symmetric difference a θ-similar pair may have.
bool SegmentDifferencePrunes(SimilarityFunction fn, double theta,
                             const SegmentView& a, const SegmentView& b,
                             uint64_t seg_overlap);

/// Minimum overlap this fragment must contribute for record `a` to be part
/// of any θ-similar pair: max(1, MinOverlapSelf(|a|) − |a^h| − |a^e|).
/// Drives the per-segment prefix length of the Prefix Join (§V-A "Prefix
/// Based Index Join"); see DESIGN.md "Prefix Join exactness".
uint64_t SegmentMinLocalOverlap(SimilarityFunction fn, double theta,
                                const SegmentView& a);

/// Per-segment prefix length: |segment| − SegmentMinLocalOverlap + 1,
/// clamped to [0, |segment|].
uint64_t SegmentPrefixLength(SimilarityFunction fn, double theta,
                             const SegmentView& a);

// ---- Test-only fault injection -------------------------------------------

/// Deliberate off-by-one faults for the differential verification harness
/// (src/check): each bias is added to the required-overlap threshold of the
/// corresponding filter, so a bias of +1 makes the filter over-prune pairs
/// whose optimistic overlap decomposition meets the bound *exactly* — the
/// classic boundary bug the harness must detect and shrink to a minimal
/// repro. Production code never sets these; the state is process-global and
/// must only be changed while no join is running.
struct FilterFaultInjection {
  int segl_required_bias = 0;  ///< SegL-Filter (Lemma 2)
  int segi_required_bias = 0;  ///< SegI-Filter (Lemma 3)

  bool Active() const { return segl_required_bias != 0 || segi_required_bias != 0; }
};

void SetFilterFaultInjection(const FilterFaultInjection& fault);
FilterFaultInjection GetFilterFaultInjection();

/// RAII guard: installs a fault for the enclosing scope, restores the
/// previous state on destruction. The standard way tests inject faults.
class ScopedFilterFault {
 public:
  explicit ScopedFilterFault(const FilterFaultInjection& fault)
      : previous_(GetFilterFaultInjection()) {
    SetFilterFaultInjection(fault);
  }
  ~ScopedFilterFault() { SetFilterFaultInjection(previous_); }
  ScopedFilterFault(const ScopedFilterFault&) = delete;
  ScopedFilterFault& operator=(const ScopedFilterFault&) = delete;

 private:
  FilterFaultInjection previous_;
};

// ---- SegmentRecord wrappers ----------------------------------------------

inline bool SegmentLengthPrunes(SimilarityFunction fn, double theta,
                                const SegmentRecord& a,
                                const SegmentRecord& b) {
  return SegmentLengthPrunes(fn, theta, ViewOf(a), ViewOf(b));
}

inline bool SegmentIntersectionPrunes(SimilarityFunction fn, double theta,
                                      const SegmentRecord& a,
                                      const SegmentRecord& b,
                                      uint64_t seg_overlap) {
  return SegmentIntersectionPrunes(fn, theta, ViewOf(a), ViewOf(b),
                                   seg_overlap);
}

inline bool SegmentDifferencePrunes(SimilarityFunction fn, double theta,
                                    const SegmentRecord& a,
                                    const SegmentRecord& b,
                                    uint64_t seg_overlap) {
  return SegmentDifferencePrunes(fn, theta, ViewOf(a), ViewOf(b), seg_overlap);
}

inline uint64_t SegmentMinLocalOverlap(SimilarityFunction fn, double theta,
                                       const SegmentRecord& a) {
  return SegmentMinLocalOverlap(fn, theta, ViewOf(a));
}

inline uint64_t SegmentPrefixLength(SimilarityFunction fn, double theta,
                                    const SegmentRecord& a) {
  return SegmentPrefixLength(fn, theta, ViewOf(a));
}

}  // namespace fsjoin

#endif  // FSJOIN_CORE_FILTERS_H_
