#ifndef FSJOIN_CORE_JOIN_PIPELINE_H_
#define FSJOIN_CORE_JOIN_PIPELINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/fragment_join.h"

namespace fsjoin {

/// Per-plan-shape compiled join pipelines (DESIGN.md §5g).
///
/// A fragment join's inner loop depends on three run-constant choices: the
/// join method (probe-loop shape), the enabled filter subset, and the
/// overlap kernel family. The seed code re-branched on all of them per
/// candidate pair; here every combination is monomorphized into its own
/// probe loop at build time (`if constexpr` drops disabled filters and the
/// unused kernel paths entirely) and JoinFragmentBatch picks the matching
/// function pointer ONCE per fragment from the KernelRegistry.

/// Filter-subset bits of a pipeline shape; bit set = filter enabled. The
/// role/pairing rule (FragmentJoinOptions::pair_allowed) stays a runtime
/// check — it is a std::function, not specializable.
inline constexpr uint32_t kPipelineStrL = 1u << 0;  ///< Lemma 1
inline constexpr uint32_t kPipelineSegL = 1u << 1;  ///< Lemma 2
inline constexpr uint32_t kPipelineSegI = 1u << 2;  ///< Lemma 3
inline constexpr uint32_t kPipelineSegD = 1u << 3;  ///< Lemma 4
inline constexpr uint32_t kNumFilterMasks = 16;

/// One point of the specialization lattice. `kernel` is always resolved
/// (never kAuto) so a shape names exactly one compiled loop.
struct PipelineShape {
  JoinMethod method = JoinMethod::kPrefix;
  uint32_t filter_mask = kNumFilterMasks - 1;
  exec::KernelMode kernel = exec::KernelMode::kPacked;
};

/// The shape a fragment join with these options dispatches to, with kAuto
/// resolved against this build + machine.
PipelineShape ShapeOf(const FragmentJoinOptions& opts);

/// A compiled pipeline: joins one sealed batch end to end (morsel split,
/// index build, probe loops) exactly like JoinFragmentBatch documents.
using PipelineFn = void (*)(const SegmentBatch&, const FragmentJoinOptions&,
                            std::vector<PartialOverlap>*, FilterCounters*);

/// Immutable table of every monomorphized pipeline, built once per process.
/// kIndex and kPrefix share loop instantiations (both are indexed probes;
/// the per-row prefix length is decided at index build, at run time), so the
/// table holds 2 loop shapes x 16 masks x 3 kernels distinct functions
/// behind 3 x 16 x 3 named slots.
class KernelRegistry {
 public:
  static const KernelRegistry& Get();

  /// Never null — every shape has a pipeline.
  PipelineFn Lookup(const PipelineShape& shape) const;

  /// Resolves "<method>/<filters>/<kernel>" (see ShapeName); nullptr when
  /// no shape has that name.
  PipelineFn LookupByName(std::string_view name) const;

  /// Canonical shape name, e.g. "prefix/strl+segl+segi+segd/simd" or
  /// "loop/none/scalar".
  static std::string ShapeName(const PipelineShape& shape);

  /// Names of all 144 slots, in table order.
  std::vector<std::string> Names() const;

 private:
  KernelRegistry();

  static constexpr int kNumMethods = 3;  ///< loop, index, prefix
  static constexpr int kNumKernels = 3;  ///< scalar, packed, simd

  PipelineFn table_[kNumMethods][kNumFilterMasks][kNumKernels] = {};
};

}  // namespace fsjoin

#endif  // FSJOIN_CORE_JOIN_PIPELINE_H_
