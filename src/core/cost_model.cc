#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace fsjoin {

std::string CostEstimate::ToString() const {
  return StrFormat(
      "cost{map=%.3g shuffle=%.3g reduce=%.3g verify=%.3g total=%.3g}", map,
      shuffle, reduce, verify, Total());
}

CostEstimate EstimateFsJoinCost(const CorpusStats& stats,
                                uint32_t num_fragments,
                                const CostModelParams& params) {
  FSJOIN_CHECK(num_fragments >= 1);
  CostEstimate cost;
  const double total_tokens = static_cast<double>(stats.total_tokens);
  const double records = static_cast<double>(stats.num_records);
  const double n = static_cast<double>(num_fragments);

  // Map and shuffle are linear in the input — the duplicate-free property.
  cost.map = total_tokens * params.cost_map;
  cost.shuffle = total_tokens * params.cost_shuffle;

  // Reduce: each fragment loop-joins its expected M·p/N segments; one
  // segment comparison costs the average segment length.
  const double segments_per_fragment =
      records * params.segment_presence / n;
  const double avg_segment_len = stats.avg_len / n;
  cost.reduce = n * segments_per_fragment * segments_per_fragment *
                    avg_segment_len * params.cost_reduce +
                n * params.cost_per_fragment;

  // Verification: candidates flow through one more map/shuffle/reduce and
  // results pay the output cost.
  const double pairs = records * (records - 1.0) / 2.0;
  const double candidates = pairs * params.candidate_rate;
  cost.verify = candidates * (params.cost_map + params.cost_shuffle +
                              params.cost_reduce) +
                candidates * params.result_rate * params.cost_output;
  return cost;
}

uint32_t OptimalFragments(const CorpusStats& stats, uint32_t max_n,
                          const CostModelParams& params) {
  FSJOIN_CHECK(max_n >= 1);
  uint32_t best_n = 1;
  double best_cost = EstimateFsJoinCost(stats, 1, params).Total();
  for (uint32_t n = 2; n <= max_n; ++n) {
    double cost = EstimateFsJoinCost(stats, n, params).Total();
    if (cost < best_cost) {
      best_cost = cost;
      best_n = n;
    }
  }
  return best_n;
}

FsJoinConfig AutoTuneConfig(const CorpusStats& stats, uint32_t num_workers,
                            uint64_t worker_memory_bytes, double theta) {
  FSJOIN_CHECK(num_workers >= 1);
  FSJOIN_CHECK(worker_memory_bytes >= 1);
  FsJoinConfig config;
  config.theta = theta;

  // §IV: at least one fragment per worker, and enough fragments that one
  // fragment (~data/N) fits in a worker's memory.
  const uint64_t by_memory = static_cast<uint64_t>(std::ceil(
      static_cast<double>(std::max<uint64_t>(stats.approx_bytes, 1)) /
      static_cast<double>(worker_memory_bytes)));
  uint32_t fragments = std::max<uint32_t>(
      num_workers, static_cast<uint32_t>(std::min<uint64_t>(by_memory, 1024)));
  // Refine with the Lemma 5 optimum, never dropping below the floor above.
  CostModelParams params;
  fragments = std::max(fragments, OptimalFragments(stats, 256, params));
  config.num_vertical_partitions = fragments;

  // Horizontal partitioning: slice fragments further when even 1/N of the
  // data exceeds a worker's memory headroom (§V-A). The scheme caps the
  // useful pivot count geometrically, so just request a generous number.
  const uint64_t fragment_bytes =
      std::max<uint64_t>(stats.approx_bytes / fragments, 1);
  if (fragment_bytes > worker_memory_bytes / 4) {
    config.num_horizontal_partitions = 16;
  }

  config.exec.num_map_tasks = num_workers * 3;  // paper: 3 slots per node
  config.exec.num_reduce_tasks = num_workers * 3;
  return config;
}

}  // namespace fsjoin
