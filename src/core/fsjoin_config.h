#ifndef FSJOIN_CORE_FSJOIN_CONFIG_H_
#define FSJOIN_CORE_FSJOIN_CONFIG_H_

#include <cstdint>
#include <optional>
#include <string>

#include "exec/exec_config.h"
#include "sim/similarity.h"
#include "text/record.h"
#include "util/status.h"

namespace fsjoin {

/// How vertical pivots are chosen from the global ordering (§IV).
enum class PivotStrategy {
  kRandom,        ///< uniform random token ranks
  kEvenInterval,  ///< equally spaced ranks (equal #distinct tokens/fragment)
  kEvenTf,        ///< equal total term frequency per fragment (paper default)
};

const char* PivotStrategyName(PivotStrategy strategy);

/// Join algorithm inside each fragment's reducer (§V-A).
enum class JoinMethod {
  kLoop,    ///< nested-loop over segment pairs
  kIndex,   ///< full inverted index on segment tokens
  kPrefix,  ///< prefix-filtered inverted index (paper default)
};

const char* JoinMethodName(JoinMethod method);

/// Full configuration of one FS-Join run.
struct FsJoinConfig {
  /// Similarity threshold θ ∈ (0, 1].
  double theta = 0.8;
  SimilarityFunction function = SimilarityFunction::kJaccard;

  /// Number of fragments (vertical partitions); the paper uses the worker
  /// count. Pivot count is num_vertical_partitions - 1.
  uint32_t num_vertical_partitions = 8;
  PivotStrategy pivot_strategy = PivotStrategy::kEvenTf;

  /// Number of horizontal length pivots t (yielding 2t+1 length groups).
  /// 0 disables horizontal partitioning (the paper's FS-Join-V).
  uint32_t num_horizontal_partitions = 0;

  JoinMethod join_method = JoinMethod::kPrefix;

  /// Segment-prefix policy for JoinMethod::kPrefix.
  ///
  /// false (default, exact): prefixes are sized by the per-record local
  /// overlap bound, which provably never loses a partial count of a
  /// θ-similar pair — results equal brute force.
  ///
  /// true (paper-aggressive): each segment is prefix-filtered like an
  /// independent mini-join at threshold θ (prefix = |seg| − ceil(θ|seg|)
  /// + 1, §V-A "Prefix Based Index Join"). Far faster on corpora whose
  /// frequent tokens appear in most records (e.g. Wiki), but partial
  /// counts of pairs that share only frequent tokens in some fragment can
  /// be missed, so borderline result pairs may be dropped (bounded recall
  /// loss, never false positives). See DESIGN.md.
  bool aggressive_segment_prefix = false;

  /// Filter toggles (all on = the paper's "All" row in Table IV). The
  /// prefix filter is implied by join_method == kPrefix.
  bool use_length_filter = true;                ///< StrL-Filter (Lemma 1)
  bool use_segment_length_filter = true;        ///< SegL-Filter (Lemma 2)
  bool use_segment_intersection_filter = true;  ///< SegI-Filter (Lemma 3)
  bool use_segment_difference_filter = true;    ///< SegD-Filter (Lemma 4)

  /// Execution substrate and engine shape (backend, task counts, threads)
  /// — shared with the baselines via exec::ExecConfig.
  exec::ExecConfig exec;

  /// Which knobs the caller set explicitly and --auto must not touch.
  /// Only consulted when exec.auto_tune is on: a pinned knob keeps its
  /// configured value and the driver logs the override (the CLI pins every
  /// knob whose flag was passed alongside --auto). Unpinned knobs are
  /// resolved by the tuner.
  struct PinnedKnobs {
    bool join_method = false;     ///< keep join_method, no per-fragment choice
    bool kernel = false;          ///< keep exec.kernel everywhere
    bool pivot_strategy = false;  ///< keep pivot_strategy, skip refinement
    bool horizontal = false;      ///< keep num_horizontal_partitions globally
  };
  PinnedKnobs pinned;

  /// When set, runs an R-S join over a concatenated corpus: only pairs with
  /// exactly one record id below the boundary are produced.
  std::optional<RecordId> rs_boundary;

  /// Debug/verification: capture every surviving partial overlap emitted by
  /// the filtering reducers into FsJoinOutput::partial_overlaps (sorted
  /// canonically). The differential harness in src/check uses it to assert
  /// the conservation law Σ fragment overlaps == exact overlap per result
  /// pair. Off by default — capture is O(emitted) extra memory.
  bool collect_partial_overlaps = false;

  /// Seed for PivotStrategy::kRandom.
  uint64_t seed = 7;

  /// Checks parameter ranges; call before Run.
  Status Validate() const;

  /// One-line description for logs/benches.
  std::string Summary() const;
};

}  // namespace fsjoin

#endif  // FSJOIN_CORE_FSJOIN_CONFIG_H_
