#ifndef FSJOIN_CORE_HORIZONTAL_H_
#define FSJOIN_CORE_HORIZONTAL_H_

#include <cstdint>
#include <vector>

#include "sim/global_order.h"
#include "sim/similarity.h"

namespace fsjoin {

/// Horizontal (length-based) partitioning, §V-A "Optimization".
///
/// With t length pivots L_1 < ... < L_t there are 2t+1 groups:
///  * main groups 0..t: group k holds strings with L_k <= |s| < L_{k+1}
///    (L_0 = 0, L_{t+1} = ∞); all pairs within a main group are joined.
///  * band groups t+1..2t: band t+k (k = 1..t) holds strings whose length
///    allows a θ-similar pair straddling pivot L_k; only pairs with
///    L_{k-1} <= |s| < L_k <= |t| are joined there. Anchoring the shorter
///    record to the band's left main group makes each straddling pair's
///    band assignment unique (the paper's rule alone can double-report
///    pairs falling into two overlapping bands; see DESIGN.md).
class HorizontalScheme {
 public:
  /// Disabled scheme: a single group 0.
  HorizontalScheme() = default;

  /// \param length_pivots strictly increasing pivot lengths L_1..L_t.
  HorizontalScheme(std::vector<uint32_t> length_pivots,
                   SimilarityFunction fn, double theta);

  /// Number of groups (1 when disabled, else 2t+1).
  uint32_t NumGroups() const {
    return static_cast<uint32_t>(2 * pivots_.size() + 1);
  }

  uint32_t NumPivots() const { return static_cast<uint32_t>(pivots_.size()); }
  const std::vector<uint32_t>& pivots() const { return pivots_; }

  /// All groups a record of length `len` belongs to (main group first).
  std::vector<uint32_t> GroupsOf(uint32_t len) const;

  /// Main group of a record length.
  uint32_t MainGroupOf(uint32_t len) const;

  /// Whether a pair of record lengths may be joined inside `group`
  /// (assuming both records belong to it). Implements the main/band rules
  /// above; it is the reducer-side dedup criterion.
  bool ShouldJoinInGroup(uint32_t group, uint32_t len_a, uint32_t len_b) const;

 private:
  std::vector<uint32_t> pivots_;
  SimilarityFunction fn_ = SimilarityFunction::kJaccard;
  double theta_ = 1.0;
};

/// Picks up to t strictly increasing length pivots at even record-count
/// quantiles of the length distribution (the paper selects pivots from the
/// length histogram so groups carry similar record counts), then thins them
/// so consecutive pivots are more than a similarity window apart
/// (PartnerSizeLowerBound(L_{k+1}) > L_k). The gap guarantee bounds band
/// duplication: any record's longer-side window [lb(len), len] contains at
/// most one pivot, so every record belongs to at most three groups (its
/// main group, one shorter-side band, one longer-side band). Without the
/// gap, dense pivots make records attend O(t) bands and the duplication
/// eats horizontal partitioning's benefit (see DESIGN.md). May return fewer
/// than `t` pivots.
std::vector<uint32_t> SelectLengthPivots(
    const std::vector<OrderedRecord>& records, uint32_t t,
    SimilarityFunction fn, double theta);

/// Same selection from raw record lengths (|s| is ordering-invariant, so
/// callers that have not materialized OrderedRecords — the driver, the
/// auto-tuner — can pass token counts directly). `lengths` may be in any
/// order; it is copied and sorted internally.
std::vector<uint32_t> SelectLengthPivotsFromLengths(
    std::vector<uint32_t> lengths, uint32_t t, SimilarityFunction fn,
    double theta);

}  // namespace fsjoin

#endif  // FSJOIN_CORE_HORIZONTAL_H_
