#ifndef FSJOIN_CORE_SEGMENTS_H_
#define FSJOIN_CORE_SEGMENTS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/global_order.h"
#include "sim/set_ops.h"
#include "util/status.h"

namespace fsjoin {

/// Physical representation Seal() picks per segment, Roaring-style. The
/// sorted token array is ALWAYS kept in the arena (filters, encoding and the
/// scalar kernels read it regardless); kBitset/kRuns additionally
/// materialize the alternate form so the join can dispatch the cheapest
/// (container x container) kernel. Bitsets live on the absolute 64-bit word
/// grid (word w covers ranks [64w, 64w + 64)), so bitsets from different
/// batches — the two sides of a fragment join — always agree on alignment.
enum class SegContainer : uint8_t {
  kArray,   ///< sorted rank array (the arena window) — always available
  kBitset,  ///< dense: word-grid bitset, popcount intersection
  kRuns,    ///< clustered: maximal consecutive-rank runs, interval merge
};

const char* SegContainerName(SegContainer c);

/// One segment of a record inside a fragment, together with the side
/// information the segment-aware filters need (§V-A): the full string
/// length |s|, the number of tokens before the segment |s^h| and after it
/// |s^e| (derived), and the segment tokens themselves (sorted ranks).
struct SegmentRecord {
  RecordId rid = 0;
  uint32_t record_size = 0;  ///< |s|
  uint32_t head = 0;         ///< |s^h|
  std::vector<TokenRank> tokens;

  /// |s^e| = |s| - |s^h| - |segment|.
  uint32_t Tail() const {
    return record_size - head - static_cast<uint32_t>(tokens.size());
  }
};

/// Non-owning view of one segment — the common currency of the filters and
/// join kernels, cheap enough to build per candidate pair. Backed either by
/// a SegmentRecord or by one row of a SegmentBatch.
struct SegmentView {
  RecordId rid = 0;
  uint32_t record_size = 0;   ///< |s|
  uint32_t head = 0;          ///< |s^h|
  const TokenRank* tokens = nullptr;
  uint32_t num_tokens = 0;

  /// |s^e| = |s| - |s^h| - |segment|.
  uint32_t Tail() const { return record_size - head - num_tokens; }
};

inline SegmentView ViewOf(const SegmentRecord& record) {
  return SegmentView{record.rid, record.record_size, record.head,
                     record.tokens.data(),
                     static_cast<uint32_t>(record.tokens.size())};
}

/// Columnar storage for all segments of one fragment: a single flat token
/// arena plus per-segment offset/rid/size/head columns. Built once per
/// fragment from the shuffled rows, then joined in place — the join kernels
/// index rows instead of chasing one heap-allocated token vector per
/// segment (see DESIGN.md §5d).
///
/// Seal() finalizes the batch: it precomputes a 64-bit word-packed bucket
/// bitmap per segment (sim/set_ops.h) under a fragment-local (base, shift)
/// mapping, enabling the one-AND empty-overlap reject in the join kernels,
/// and classifies each segment into a physical container (SegContainer
/// above) for the (container x container) kernel dispatch.
class SegmentBatch {
 public:
  SegmentBatch() { offsets_.push_back(0); }

  /// Pre-sizes the columns (`num_tokens` counts tokens across segments).
  void Reserve(size_t num_segments, size_t num_tokens);

  /// Appends one segment; `tokens` must be sorted ascending.
  void Append(RecordId rid, uint32_t record_size, uint32_t head,
              const TokenRank* tokens, size_t num_tokens);
  void Append(const SegmentRecord& record);

  /// Decodes an EncodeSegment payload straight into the arena — the
  /// shuffle-value fast path with no per-segment token vector.
  Status AppendEncoded(std::string_view data);

  /// Finalizes the batch: computes the per-segment bucket bitmaps. Must be
  /// called before joining; appending afterwards unseals the batch.
  void Seal();
  bool sealed() const { return sealed_; }

  uint32_t size() const { return static_cast<uint32_t>(rids_.size()); }
  bool empty() const { return rids_.empty(); }
  size_t total_tokens() const { return arena_.size(); }

  RecordId rid(uint32_t i) const { return rids_[i]; }
  uint32_t record_size(uint32_t i) const { return record_sizes_[i]; }
  uint32_t head(uint32_t i) const { return heads_[i]; }
  uint32_t length(uint32_t i) const {
    return static_cast<uint32_t>(offsets_[i + 1] - offsets_[i]);
  }
  uint32_t Tail(uint32_t i) const {
    return record_sizes_[i] - heads_[i] - length(i);
  }
  const TokenRank* tokens(uint32_t i) const {
    return arena_.data() + offsets_[i];
  }
  /// Word-packed bucket bitmap of segment i (valid once sealed).
  uint64_t bitmap(uint32_t i) const { return bitmaps_[i]; }

  /// Physical container Seal() chose for segment i (valid once sealed).
  /// Dense segments (few grid words per token) become kBitset, clustered
  /// ones (few runs per token) kRuns, everything else stays kArray.
  SegContainer container(uint32_t i) const { return containers_[i]; }

  /// Bitset window of a kBitset segment on the absolute word grid: word w of
  /// the window is grid word bitset_word0(i) + w.
  const uint64_t* bitset_words(uint32_t i) const {
    return bitset_arena_.data() + bitset_offsets_[i];
  }
  uint32_t bitset_word0(uint32_t i) const { return bitset_word0_[i]; }
  uint32_t bitset_num_words(uint32_t i) const { return bitset_num_words_[i]; }

  /// Run list of a kRuns segment.
  const TokenRun* runs(uint32_t i) const {
    return runs_arena_.data() + run_offsets_[i];
  }
  uint32_t num_runs(uint32_t i) const { return run_counts_[i]; }

  SegmentView View(uint32_t i) const {
    return SegmentView{rids_[i], record_sizes_[i], heads_[i], tokens(i),
                       length(i)};
  }

  /// R-S joins: tags every row with its side (probe R = rid < boundary,
  /// build S = rid >= boundary) and caches the two row-index lists the
  /// side-aware join loops iterate — probes never meet probes, builds never
  /// meet builds, so no same-side pair is ever formed. Call after Seal();
  /// appending afterwards clears the tagging along with the seal.
  void TagSides(RecordId boundary);
  bool side_tagged() const { return side_tagged_; }
  /// True iff row i is on the probe (R) side. Valid once side-tagged.
  bool is_probe(uint32_t i) const { return probe_side_[i] != 0; }
  const std::vector<uint32_t>& probe_rows() const { return probe_rows_; }
  const std::vector<uint32_t>& build_rows() const { return build_rows_; }

  /// Builds and seals a batch from row-oriented segments.
  static SegmentBatch FromRecords(const std::vector<SegmentRecord>& records);

 private:
  std::vector<TokenRank> arena_;  ///< all segment tokens, back to back
  std::vector<uint64_t> offsets_;  ///< arena offsets, size() + 1 entries
  std::vector<RecordId> rids_;
  std::vector<uint32_t> record_sizes_;
  std::vector<uint32_t> heads_;
  std::vector<uint64_t> bitmaps_;  ///< filled by Seal()
  // Container columns, filled by Seal(). The bitset/run arenas are shared
  // across segments; the per-segment offset columns carve out windows. For
  // segments of another container kind the columns hold zeros.
  std::vector<SegContainer> containers_;
  std::vector<uint64_t> bitset_arena_;
  std::vector<uint32_t> bitset_offsets_;
  std::vector<uint32_t> bitset_word0_;
  std::vector<uint32_t> bitset_num_words_;
  std::vector<TokenRun> runs_arena_;
  std::vector<uint32_t> run_offsets_;
  std::vector<uint32_t> run_counts_;
  // Side columns, filled by TagSides() for R-S fragments; empty on
  // self-join batches (the side machinery costs nothing unless asked for).
  std::vector<uint8_t> probe_side_;
  std::vector<uint32_t> probe_rows_;
  std::vector<uint32_t> build_rows_;
  bool sealed_ = false;
  bool side_tagged_ = false;
};

/// A record's split into segments: segment `v` spans ranks
/// [pivots[v-1], pivots[v]). Only non-empty segments are materialized.
struct SegmentSplit {
  /// Parallel arrays: fragment id of each emitted segment.
  std::vector<uint32_t> fragment_ids;
  std::vector<SegmentRecord> segments;
};

/// Splits an ordered record (tokens sorted ascending by rank) along the
/// pivot boundaries. The union of emitted segments is exactly the record,
/// segments are pairwise disjoint, and head counts are consistent — the
/// duplicate-free property at the heart of FS-Join.
SegmentSplit SplitIntoSegments(const OrderedRecord& record,
                               const std::vector<TokenRank>& pivots);

/// Serializes a SegmentRecord into an MR value.
void EncodeSegment(const SegmentRecord& segment, std::string* out);

/// Parses a value produced by EncodeSegment.
Status DecodeSegment(std::string_view data, SegmentRecord* segment);

}  // namespace fsjoin

#endif  // FSJOIN_CORE_SEGMENTS_H_
