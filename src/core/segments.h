#ifndef FSJOIN_CORE_SEGMENTS_H_
#define FSJOIN_CORE_SEGMENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/global_order.h"
#include "util/status.h"

namespace fsjoin {

/// One segment of a record inside a fragment, together with the side
/// information the segment-aware filters need (§V-A): the full string
/// length |s|, the number of tokens before the segment |s^h| and after it
/// |s^e| (derived), and the segment tokens themselves (sorted ranks).
struct SegmentRecord {
  RecordId rid = 0;
  uint32_t record_size = 0;  ///< |s|
  uint32_t head = 0;         ///< |s^h|
  std::vector<TokenRank> tokens;

  /// |s^e| = |s| - |s^h| - |segment|.
  uint32_t Tail() const {
    return record_size - head - static_cast<uint32_t>(tokens.size());
  }
};

/// A record's split into segments: segment `v` spans ranks
/// [pivots[v-1], pivots[v]). Only non-empty segments are materialized.
struct SegmentSplit {
  /// Parallel arrays: fragment id of each emitted segment.
  std::vector<uint32_t> fragment_ids;
  std::vector<SegmentRecord> segments;
};

/// Splits an ordered record (tokens sorted ascending by rank) along the
/// pivot boundaries. The union of emitted segments is exactly the record,
/// segments are pairwise disjoint, and head counts are consistent — the
/// duplicate-free property at the heart of FS-Join.
SegmentSplit SplitIntoSegments(const OrderedRecord& record,
                               const std::vector<TokenRank>& pivots);

/// Serializes a SegmentRecord into an MR value.
void EncodeSegment(const SegmentRecord& segment, std::string* out);

/// Parses a value produced by EncodeSegment.
Status DecodeSegment(std::string_view data, SegmentRecord* segment);

}  // namespace fsjoin

#endif  // FSJOIN_CORE_SEGMENTS_H_
