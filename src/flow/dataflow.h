#ifndef FSJOIN_FLOW_DATAFLOW_H_
#define FSJOIN_FLOW_DATAFLOW_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mr/job.h"
#include "mr/kv.h"
#include "mr/runner.h"
#include "util/status.h"

namespace fsjoin::flow {

/// A Spark-style dataflow executor — the paper's §VII future work ("other
/// Big Data platforms, like Spark") built as a second execution substrate.
///
/// Differences from the Hadoop-style mr::Engine:
///  * consecutive narrow stages (FlatMap) are *fused*: records stream
///    through the whole chain in one pass with no materialization, sort or
///    scheduling barrier between them;
///  * only wide stages (GroupByKey) shuffle, and their outputs stay
///    partitioned in memory for the next chain instead of being written to
///    a DFS and re-split;
///  * one pipeline = one "job": per-stage scheduling overhead is paid once
///    per shuffle, not once per MapReduce job.
///
/// The stage interfaces reuse mr::Mapper / mr::Reducer, so every FS-Join
/// and baseline operator runs unchanged on either engine.
///
/// Usage:
///   Pipeline p("fsjoin", /*threads=*/0, /*partitions=*/30);
///   p.FlatMap("split", mapper_factory)
///    .GroupByKey("join", reducer_factory, partitioner)
///    .GroupByKey("verify", verify_factory);
///   FSJOIN_ASSIGN_OR_RETURN(mr::Dataset out, p.Run(input, &metrics));
class Pipeline {
 public:
  /// \param num_threads    workers for running partitions (0 = inline)
  /// \param num_partitions parallelism of every stage
  Pipeline(std::string name, size_t num_threads, uint32_t num_partitions);

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Appends a narrow stage; fused with any directly preceding narrow
  /// stages. One mapper instance per partition per run.
  Pipeline& FlatMap(std::string stage_name, mr::MapperFactory factory);

  /// Appends a wide stage: hash-shuffle by key (default HashPartitioner),
  /// sort-group within each partition, apply the reducer. The optional
  /// combiner runs on each shuffle bucket before it ships (Spark's
  /// map-side combine) and must be result-compatible with the reducer.
  /// `side` is the stage's fork-boundary side channel (mr/job.h): when the
  /// pipeline runs on an isolated runner, reducer mutations of shared
  /// driver context cross back via reset/capture/merge.
  Pipeline& GroupByKey(
      std::string stage_name, mr::ReducerFactory factory,
      std::shared_ptr<const mr::Partitioner> partitioner = nullptr,
      mr::ReducerFactory combiner = nullptr, mr::TaskSideChannel side = {});

  /// Routes every pass's tasks through `runner` (not owned, must outlive
  /// the pipeline) with `task_retries` re-executions per failed task when
  /// the runner is retryable. Default: an owned thread-pool runner over
  /// the constructor's `num_threads`, no retries — the seed behavior.
  Pipeline& SetRunner(mr::TaskRunner* runner, int task_retries);

  /// External-shuffle knobs (off by default: shuffles stay in memory).
  struct SpillOptions {
    /// Cap on buffered shuffle bucket bytes per Run (0 = unlimited). The
    /// budget chains to store::ProcessMemoryBudget(); when a bucket's
    /// charge trips, that bucket is sorted and written to a run file and
    /// the reduce side streams a merge of runs and surviving in-memory
    /// buckets. Results are byte-identical to the in-memory path (which
    /// bucket spills under concurrency is timing-dependent; the output is
    /// not).
    uint64_t memory_bytes = 0;
    /// Base directory for spill runs; each Run creates and removes its own
    /// unique subdirectory. Empty = system temp directory.
    std::string dir;
  };
  Pipeline& SetSpill(SpillOptions options);

  /// Executes the pipeline over `input`.
  Result<mr::Dataset> Run(const mr::Dataset& input);

  /// Per-wide-stage counters: what crossed this stage's shuffle boundary
  /// and what its reducers produced. One entry per GroupByKey, in stage
  /// order — the fused analogue of one MR job's counters, letting callers
  /// line the fused execution up against a per-job MapReduce history.
  struct WideStageMetrics {
    std::string name;
    uint64_t input_records = 0;  ///< records entering the fused chain
    uint64_t input_bytes = 0;
    uint64_t combine_input_records = 0;  ///< 0 when no combiner configured
    uint64_t shuffle_records = 0;        ///< post-combine, pre-shuffle
    uint64_t shuffle_bytes = 0;
    uint64_t spilled_bytes = 0;  ///< bucket bytes written to run files
    uint32_t spill_runs = 0;     ///< run files written for this stage
    uint64_t output_records = 0;  ///< reducer output
    uint64_t output_bytes = 0;
  };

  /// Execution counters of the last Run().
  struct Metrics {
    uint64_t input_records = 0;
    uint64_t output_records = 0;
    uint64_t shuffle_records = 0;  ///< records crossing wide boundaries
    uint64_t shuffle_bytes = 0;
    uint64_t spilled_bytes = 0;  ///< shuffle bytes that went through disk
    uint32_t spill_runs = 0;     ///< spill run files written
    uint32_t num_shuffles = 0;
    /// Bytes materialized between stages — the quantity fusion eliminates
    /// relative to the MR engine (which materializes every job's output).
    uint64_t materialized_bytes = 0;
    int64_t wall_micros = 0;
    std::vector<WideStageMetrics> wide_stages;
  };
  const Metrics& metrics() const { return metrics_; }

  const std::string& name() const { return name_; }

 private:
  struct Stage {
    bool wide = false;
    std::string name;
    mr::MapperFactory mapper;
    mr::ReducerFactory reducer;
    mr::ReducerFactory combiner;
    std::shared_ptr<const mr::Partitioner> partitioner;
    mr::TaskSideChannel side;
  };

  std::string name_;
  uint32_t num_partitions_;
  std::unique_ptr<mr::TaskRunner> owned_runner_;
  mr::TaskRunner* runner_ = nullptr;
  int task_retries_ = 0;
  std::vector<Stage> stages_;
  SpillOptions spill_;
  Metrics metrics_;
};

}  // namespace fsjoin::flow

#endif  // FSJOIN_FLOW_DATAFLOW_H_
