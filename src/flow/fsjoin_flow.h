#ifndef FSJOIN_FLOW_FSJOIN_FLOW_H_
#define FSJOIN_FLOW_FSJOIN_FLOW_H_

#include <vector>

#include "core/fsjoin.h"
#include "flow/dataflow.h"
#include "util/status.h"

namespace fsjoin::flow {

/// Per-run counters of the dataflow FS-Join.
struct FlowJoinReport {
  Pipeline::Metrics ordering;
  Pipeline::Metrics join;  ///< filtering + verification in one pipeline
  double total_wall_ms = 0.0;
};

struct FlowJoinOutput {
  JoinResultSet pairs;
  FlowJoinReport report;
};

/// FS-Join on the Spark-style executor: the same operators as the MR
/// driver, arranged as two pipelines instead of three jobs —
///
///   pipeline 1: FlatMap(tokenize) → GroupByKey(sum)          (ordering)
///   pipeline 2: FlatMap(vertical split) → GroupByKey(fragment join)
///               → GroupByKey(verification)                   (join)
///
/// The verification stage consumes the fragment joins' partial overlaps
/// directly from the previous shuffle: the MR version's identity-map pass
/// and two full DFS materializations disappear. Results are identical to
/// FsJoin::Run (property-tested).
Result<FlowJoinOutput> RunFsJoinOnFlow(const Corpus& corpus,
                                       const FsJoinConfig& config);

}  // namespace fsjoin::flow

#endif  // FSJOIN_FLOW_FSJOIN_FLOW_H_
