#include "flow/dataflow.h"

#include <algorithm>
#include <mutex>
#include <string_view>
#include <utility>

#include "mr/shuffle.h"
#include "util/logging.h"
#include "util/timer.h"

namespace fsjoin::flow {

namespace {

/// Emitter adapter feeding records into a callback chain.
class CallbackEmitter : public mr::Emitter {
 public:
  using Sink = std::function<Status(mr::KeyValue)>;
  explicit CallbackEmitter(Sink sink) : sink_(std::move(sink)) {}

  void Emit(std::string_view key, std::string_view value) override {
    if (!status_.ok()) return;
    status_ = sink_(mr::KeyValue{std::string(key), std::string(value)});
  }

  const Status& status() const { return status_; }

 private:
  Sink sink_;
  Status status_;
};

}  // namespace

Pipeline::Pipeline(std::string name, size_t num_threads,
                   uint32_t num_partitions)
    : name_(std::move(name)),
      num_partitions_(std::max<uint32_t>(num_partitions, 1)),
      pool_(num_threads) {}

Pipeline& Pipeline::FlatMap(std::string stage_name, mr::MapperFactory factory) {
  Stage stage;
  stage.wide = false;
  stage.name = std::move(stage_name);
  stage.mapper = std::move(factory);
  stages_.push_back(std::move(stage));
  return *this;
}

Pipeline& Pipeline::GroupByKey(
    std::string stage_name, mr::ReducerFactory factory,
    std::shared_ptr<const mr::Partitioner> partitioner,
    mr::ReducerFactory combiner) {
  Stage stage;
  stage.wide = true;
  stage.name = std::move(stage_name);
  stage.reducer = std::move(factory);
  stage.combiner = std::move(combiner);
  stage.partitioner = partitioner != nullptr
                          ? std::move(partitioner)
                          : std::make_shared<mr::HashPartitioner>();
  stages_.push_back(std::move(stage));
  return *this;
}

namespace {

/// Runs `combiner_factory` over one shuffle bucket in place: sort, group,
/// combine — Spark's map-side combine, applied before the bucket ships.
Status CombineBucket(const mr::ReducerFactory& combiner_factory,
                     mr::Dataset* bucket) {
  if (bucket->empty()) return Status::OK();
  mr::SortDatasetByKey(bucket);
  mr::Dataset combined;
  CallbackEmitter emitter([&combined](mr::KeyValue kv) -> Status {
    combined.push_back(std::move(kv));
    return Status::OK();
  });
  std::unique_ptr<mr::Reducer> combiner = combiner_factory();
  Status st = combiner->Setup();
  std::vector<std::string_view> values;
  size_t i = 0;
  while (st.ok() && i < bucket->size()) {
    size_t j = i;
    values.clear();
    while (j < bucket->size() && (*bucket)[j].key == (*bucket)[i].key) {
      values.push_back((*bucket)[j].value);
      ++j;
    }
    st = combiner->Reduce((*bucket)[i].key,
                          mr::ValueList(values.data(), values.size()),
                          &emitter);
    i = j;
  }
  if (st.ok()) st = combiner->Finish(&emitter);
  if (st.ok()) st = emitter.status();
  FSJOIN_RETURN_NOT_OK(st);
  *bucket = std::move(combined);
  return Status::OK();
}

}  // namespace

Result<mr::Dataset> Pipeline::Run(const mr::Dataset& input) {
  WallTimer timer;
  metrics_ = Metrics{};
  metrics_.input_records = input.size();

  // Initial partitioning: contiguous splits (like input blocks).
  std::vector<mr::Dataset> partitions(num_partitions_);
  {
    const size_t per =
        (input.size() + num_partitions_ - 1) / std::max<uint32_t>(num_partitions_, 1);
    for (uint32_t p = 0; p < num_partitions_; ++p) {
      const size_t begin = std::min(input.size(), p * per);
      const size_t end = std::min(input.size(), begin + per);
      partitions[p].assign(input.begin() + begin, input.begin() + end);
    }
  }

  size_t s = 0;
  while (s < stages_.size()) {
    // Collect the maximal run of narrow stages starting at s, optionally
    // terminated by one wide stage: one fused pass handles narrow chain +
    // the wide stage's partition-and-ship.
    size_t chain_end = s;
    while (chain_end < stages_.size() && !stages_[chain_end].wide) {
      ++chain_end;
    }
    const bool has_wide = chain_end < stages_.size();

    WideStageMetrics stage_metrics;
    if (has_wide) {
      stage_metrics.name = stages_[chain_end].name;
      for (const mr::Dataset& p : partitions) {
        stage_metrics.input_records += p.size();
        stage_metrics.input_bytes += mr::DatasetBytes(p);
      }
    }

    // Per source-partition output buckets (either pass-through or keyed by
    // the wide stage's partitioner).
    std::vector<std::vector<mr::Dataset>> shuffled(
        num_partitions_, std::vector<mr::Dataset>(has_wide ? num_partitions_ : 1));
    std::vector<Status> statuses(num_partitions_);
    std::vector<uint64_t> combine_counts(num_partitions_, 0);

    pool_.ParallelFor(num_partitions_, [&](size_t p) {
      // Build the fused chain back-to-front: the last sink either routes
      // into shuffle buckets or appends to the single output bucket.
      const mr::Partitioner* partitioner =
          has_wide ? stages_[chain_end].partitioner.get() : nullptr;
      std::vector<mr::Dataset>& sinks = shuffled[p];
      CallbackEmitter::Sink sink = [&sinks, partitioner,
                                    this](mr::KeyValue kv) -> Status {
        const uint32_t bucket =
            partitioner != nullptr
                ? partitioner->Partition(kv.key, num_partitions_)
                : 0;
        sinks[bucket].push_back(std::move(kv));
        return Status::OK();
      };

      // Instantiate one mapper per narrow stage for this partition and
      // compose their Map calls.
      std::vector<std::unique_ptr<mr::Mapper>> mappers;
      for (size_t i = s; i < chain_end; ++i) {
        mappers.push_back(stages_[i].mapper());
      }
      // emit_into[i] feeds record into mapper i (or the sink at the end).
      std::vector<CallbackEmitter::Sink> emit_into(mappers.size() + 1);
      emit_into[mappers.size()] = sink;
      for (size_t i = mappers.size(); i-- > 0;) {
        mr::Mapper* mapper = mappers[i].get();
        CallbackEmitter::Sink next = emit_into[i + 1];
        emit_into[i] = [mapper, next](mr::KeyValue kv) -> Status {
          CallbackEmitter emitter(next);
          FSJOIN_RETURN_NOT_OK(mapper->Map(kv, &emitter));
          return emitter.status();
        };
      }

      Status st;
      for (auto& mapper : mappers) {
        st = mapper->Setup();
        if (!st.ok()) break;
      }
      if (st.ok()) {
        for (mr::KeyValue& kv : partitions[p]) {
          st = emit_into[0](std::move(kv));
          if (!st.ok()) break;
        }
      }
      if (st.ok()) {
        // Finish hooks cascade into the rest of the chain.
        for (size_t i = 0; i < mappers.size() && st.ok(); ++i) {
          CallbackEmitter emitter(emit_into[i + 1]);
          st = mappers[i]->Finish(&emitter);
          if (st.ok()) st = emitter.status();
        }
      }
      if (st.ok() && has_wide && stages_[chain_end].combiner) {
        // Map-side combine: shrink each outgoing bucket before it ships.
        for (mr::Dataset& bucket : sinks) {
          combine_counts[p] += bucket.size();
          st = CombineBucket(stages_[chain_end].combiner, &bucket);
          if (!st.ok()) break;
        }
      }
      statuses[p] = st;
    });
    for (const Status& st : statuses) {
      FSJOIN_RETURN_NOT_OK(st);
    }

    // Assemble the next generation of partitions.
    std::vector<mr::Dataset> next(num_partitions_);
    if (has_wide) {
      ++metrics_.num_shuffles;
      for (uint64_t c : combine_counts) {
        stage_metrics.combine_input_records += c;
      }
      for (uint32_t dst = 0; dst < num_partitions_; ++dst) {
        size_t total = 0;
        for (uint32_t src = 0; src < num_partitions_; ++src) {
          total += shuffled[src][dst].size();
        }
        mr::Dataset bucket;
        bucket.reserve(total);
        for (uint32_t src = 0; src < num_partitions_; ++src) {
          std::move(shuffled[src][dst].begin(), shuffled[src][dst].end(),
                    std::back_inserter(bucket));
          mr::Dataset().swap(shuffled[src][dst]);
        }
        stage_metrics.shuffle_records += bucket.size();
        stage_metrics.shuffle_bytes += mr::DatasetBytes(bucket);
        next[dst] = std::move(bucket);
      }
      metrics_.shuffle_records += stage_metrics.shuffle_records;
      metrics_.shuffle_bytes += stage_metrics.shuffle_bytes;
      // Grouped reduce per partition.
      const Stage& wide = stages_[chain_end];
      std::vector<mr::Dataset> reduced(num_partitions_);
      std::vector<Status> reduce_status(num_partitions_);
      pool_.ParallelFor(num_partitions_, [&](size_t p) {
        mr::SortDatasetByKey(&next[p]);
        std::unique_ptr<mr::Reducer> reducer = wide.reducer();
        CallbackEmitter emitter([&reduced, p](mr::KeyValue kv) -> Status {
          reduced[p].push_back(std::move(kv));
          return Status::OK();
        });
        Status st = reducer->Setup();
        size_t i = 0;
        // Values are views into the sorted partition's records: grouping
        // performs no per-value copies (same contract as the MR engine).
        std::vector<std::string_view> values;
        while (st.ok() && i < next[p].size()) {
          size_t j = i;
          values.clear();
          while (j < next[p].size() && next[p][j].key == next[p][i].key) {
            values.push_back(next[p][j].value);
            ++j;
          }
          st = reducer->Reduce(next[p][i].key,
                               mr::ValueList(values.data(), values.size()),
                               &emitter);
          i = j;
        }
        if (st.ok()) st = reducer->Finish(&emitter);
        if (st.ok()) st = emitter.status();
        reduce_status[p] = st;
      });
      for (const Status& st : reduce_status) {
        FSJOIN_RETURN_NOT_OK(st);
      }
      next = std::move(reduced);
      for (const mr::Dataset& p : next) {
        stage_metrics.output_records += p.size();
        stage_metrics.output_bytes += mr::DatasetBytes(p);
      }
      metrics_.wide_stages.push_back(std::move(stage_metrics));
      s = chain_end + 1;
    } else {
      for (uint32_t p = 0; p < num_partitions_; ++p) {
        next[p] = std::move(shuffled[p][0]);
      }
      s = chain_end;
    }
    partitions = std::move(next);
    for (const mr::Dataset& p : partitions) {
      metrics_.materialized_bytes += mr::DatasetBytes(p);
    }
  }

  mr::Dataset output;
  size_t total = 0;
  for (const mr::Dataset& p : partitions) total += p.size();
  output.reserve(total);
  for (mr::Dataset& p : partitions) {
    std::move(p.begin(), p.end(), std::back_inserter(output));
  }
  metrics_.output_records = output.size();
  metrics_.wall_micros = timer.ElapsedMicros();
  return output;
}

}  // namespace fsjoin::flow
