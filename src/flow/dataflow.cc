#include "flow/dataflow.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <string_view>
#include <utility>

#include "mr/scheduler.h"
#include "mr/shuffle.h"
#include "mr/task.h"
#include "store/memory_budget.h"
#include "store/merge.h"
#include "store/run_file.h"
#include "store/temp_dir.h"
#include "util/logging.h"
#include "util/timer.h"

namespace fsjoin::flow {

namespace {

/// Emitter adapter feeding records into a callback chain.
class CallbackEmitter : public mr::Emitter {
 public:
  using Sink = std::function<Status(mr::KeyValue)>;
  explicit CallbackEmitter(Sink sink) : sink_(std::move(sink)) {}

  void Emit(std::string_view key, std::string_view value) override {
    if (!status_.ok()) return;
    status_ = sink_(mr::KeyValue{std::string(key), std::string(value)});
  }

  const Status& status() const { return status_; }

 private:
  Sink sink_;
  Status status_;
};

}  // namespace

Pipeline::Pipeline(std::string name, size_t num_threads,
                   uint32_t num_partitions)
    : name_(std::move(name)),
      num_partitions_(std::max<uint32_t>(num_partitions, 1)),
      owned_runner_(mr::MakeTaskRunner(mr::RunnerKind::kThreads, num_threads)),
      runner_(owned_runner_.get()) {}

Pipeline& Pipeline::FlatMap(std::string stage_name, mr::MapperFactory factory) {
  Stage stage;
  stage.wide = false;
  stage.name = std::move(stage_name);
  stage.mapper = std::move(factory);
  stages_.push_back(std::move(stage));
  return *this;
}

Pipeline& Pipeline::SetSpill(SpillOptions options) {
  spill_ = std::move(options);
  return *this;
}

Pipeline& Pipeline::SetRunner(mr::TaskRunner* runner, int task_retries) {
  runner_ = runner != nullptr ? runner : owned_runner_.get();
  task_retries_ = task_retries;
  return *this;
}

Pipeline& Pipeline::GroupByKey(
    std::string stage_name, mr::ReducerFactory factory,
    std::shared_ptr<const mr::Partitioner> partitioner,
    mr::ReducerFactory combiner, mr::TaskSideChannel side) {
  Stage stage;
  stage.wide = true;
  stage.name = std::move(stage_name);
  stage.reducer = std::move(factory);
  stage.combiner = std::move(combiner);
  stage.partitioner = partitioner != nullptr
                          ? std::move(partitioner)
                          : std::make_shared<mr::HashPartitioner>();
  stage.side = std::move(side);
  stages_.push_back(std::move(stage));
  return *this;
}

namespace {

/// Runs `combiner_factory` over one shuffle bucket in place: sort, group,
/// combine — Spark's map-side combine, applied before the bucket ships.
Status CombineBucket(const mr::ReducerFactory& combiner_factory,
                     mr::Dataset* bucket) {
  if (bucket->empty()) return Status::OK();
  mr::SortDatasetByKey(bucket);
  mr::Dataset combined;
  CallbackEmitter emitter([&combined](mr::KeyValue kv) -> Status {
    combined.push_back(std::move(kv));
    return Status::OK();
  });
  std::unique_ptr<mr::Reducer> combiner = combiner_factory();
  Status st = combiner->Setup();
  std::vector<std::string_view> values;
  size_t i = 0;
  while (st.ok() && i < bucket->size()) {
    size_t j = i;
    values.clear();
    while (j < bucket->size() && (*bucket)[j].key == (*bucket)[i].key) {
      values.push_back((*bucket)[j].value);
      ++j;
    }
    st = combiner->Reduce((*bucket)[i].key,
                          mr::ValueList(values.data(), values.size()),
                          &emitter);
    i = j;
  }
  if (st.ok()) st = combiner->Finish(&emitter);
  if (st.ok()) st = emitter.status();
  FSJOIN_RETURN_NOT_OK(st);
  *bucket = std::move(combined);
  return Status::OK();
}

}  // namespace

Result<mr::Dataset> Pipeline::Run(const mr::Dataset& input) {
  WallTimer timer;
  metrics_ = Metrics{};
  metrics_.input_records = input.size();

  // External shuffle: buffered shuffle buckets are charged against this
  // budget (chained to the process-wide one); over-budget buckets are
  // sorted and written as run files into a Run-scoped scratch directory,
  // removed when this function returns on every path. An isolated runner
  // needs the scratch directory even without a budget: it is where task
  // attempts exchange their interchange files.
  const bool isolated = runner_->isolated();
  std::optional<store::TempSpillDir> spill_scratch;
  std::optional<store::MemoryBudget> job_budget;
  if (spill_.memory_bytes > 0 || isolated) {
    FSJOIN_ASSIGN_OR_RETURN(
        store::TempSpillDir dir,
        store::TempSpillDir::Create(spill_.dir, "fsjoin-spill-flow"));
    spill_scratch.emplace(std::move(dir));
  }
  if (spill_.memory_bytes > 0) {
    job_budget.emplace(spill_.memory_bytes, &store::ProcessMemoryBudget());
  }
  mr::TaskScheduler scheduler(runner_, task_retries_);

  // Initial partitioning: contiguous splits (like input blocks).
  std::vector<mr::Dataset> partitions(num_partitions_);
  {
    const size_t per =
        (input.size() + num_partitions_ - 1) / std::max<uint32_t>(num_partitions_, 1);
    for (uint32_t p = 0; p < num_partitions_; ++p) {
      const size_t begin = std::min(input.size(), p * per);
      const size_t end = std::min(input.size(), begin + per);
      partitions[p].assign(input.begin() + begin, input.begin() + end);
    }
  }

  size_t s = 0;
  uint32_t pass = 0;
  while (s < stages_.size()) {
    // Collect the maximal run of narrow stages starting at s, optionally
    // terminated by one wide stage: one fused pass handles narrow chain +
    // the wide stage's partition-and-ship.
    size_t chain_end = s;
    while (chain_end < stages_.size() && !stages_[chain_end].wide) {
      ++chain_end;
    }
    const bool has_wide = chain_end < stages_.size();

    WideStageMetrics stage_metrics;
    if (has_wide) {
      stage_metrics.name = stages_[chain_end].name;
      for (const mr::Dataset& p : partitions) {
        stage_metrics.input_records += p.size();
        stage_metrics.input_bytes += mr::DatasetBytes(p);
      }
    }

    // Per source-partition output buckets (either pass-through or keyed by
    // the wide stage's partitioner), landed from each map task's output.
    const uint32_t num_buckets = has_wide ? num_partitions_ : 1;
    std::vector<std::vector<mr::Dataset>> shuffled(num_partitions_);
    std::vector<uint64_t> combine_counts(num_partitions_, 0);

    // Spill bookkeeping for this stage: slot[src][dst] records the run file
    // a (src,dst) bucket was written to (empty path = still in memory), and
    // charged[src] the budget charge held by src's surviving buckets.
    // Charging happens on the scheduling thread as each map task's buckets
    // land (task-index order), so spill decisions are deterministic and
    // identical across runners. The guard releases the stage's charges on
    // every exit path so the process-wide budget never leaks across stages
    // or on errors.
    struct SpillSlot {
      std::string path;
      uint64_t records = 0;
      uint64_t bytes = 0;
    };
    const bool spilling = has_wide && job_budget.has_value();
    std::vector<std::vector<SpillSlot>> spill_slots(
        spilling ? num_partitions_ : 0,
        std::vector<SpillSlot>(num_partitions_));
    std::vector<uint64_t> charged(num_partitions_, 0);
    struct ChargeGuard {
      store::MemoryBudget* budget = nullptr;
      const std::vector<uint64_t>* charges = nullptr;
      ~ChargeGuard() {
        if (budget == nullptr) return;
        for (uint64_t c : *charges) budget->Release(c);
      }
    } charge_guard;
    if (spilling) {
      charge_guard.budget = &*job_budget;
      charge_guard.charges = &charged;
    }

    // One fused pass = one stage of map tasks on the scheduler: each task
    // runs the narrow chain over its partition and carries its routed
    // buckets back in TaskOutput::buckets. Under an isolated runner the
    // chain executes in a forked child (its closures cannot cross an exec
    // boundary) and the buckets return through the CRC-framed run-file
    // interchange.
    std::vector<mr::TaskSpec> map_specs(num_partitions_);
    for (uint32_t p = 0; p < num_partitions_; ++p) {
      mr::TaskSpec& spec = map_specs[p];
      spec.job_name =
          name_ + "/" + (has_wide ? stages_[chain_end].name : "tail");
      spec.kind = mr::TaskKind::kMap;
      spec.task_index = p;
      spec.num_partitions = num_buckets;
      spec.input_end = partitions[p].size();
      if (isolated) {
        spec.output_base = spill_scratch->path() + "/p" +
                           std::to_string(pass) + "-map-t" + std::to_string(p);
      }
    }
    mr::TaskBody map_body = [&](const mr::TaskSpec& task,
                                mr::TaskOutput* out) -> Status {
      const size_t p = task.task_index;
      out->buckets.assign(task.num_partitions, mr::Dataset());
      // Build the fused chain back-to-front: the last sink either routes
      // into shuffle buckets or appends to the single output bucket.
      const mr::Partitioner* partitioner =
          has_wide ? stages_[chain_end].partitioner.get() : nullptr;
      std::vector<mr::Dataset>& sinks = out->buckets;
      CallbackEmitter::Sink sink = [&sinks, partitioner,
                                    this](mr::KeyValue kv) -> Status {
        const uint32_t bucket =
            partitioner != nullptr
                ? partitioner->Partition(kv.key, num_partitions_)
                : 0;
        sinks[bucket].push_back(std::move(kv));
        return Status::OK();
      };

      // Instantiate one mapper per narrow stage for this partition and
      // compose their Map calls.
      std::vector<std::unique_ptr<mr::Mapper>> mappers;
      for (size_t i = s; i < chain_end; ++i) {
        mappers.push_back(stages_[i].mapper());
      }
      // emit_into[i] feeds record into mapper i (or the sink at the end).
      std::vector<CallbackEmitter::Sink> emit_into(mappers.size() + 1);
      emit_into[mappers.size()] = sink;
      for (size_t i = mappers.size(); i-- > 0;) {
        mr::Mapper* mapper = mappers[i].get();
        CallbackEmitter::Sink next = emit_into[i + 1];
        emit_into[i] = [mapper, next](mr::KeyValue kv) -> Status {
          CallbackEmitter emitter(next);
          FSJOIN_RETURN_NOT_OK(mapper->Map(kv, &emitter));
          return emitter.status();
        };
      }

      Status st;
      for (auto& mapper : mappers) {
        st = mapper->Setup();
        if (!st.ok()) break;
      }
      if (st.ok()) {
        for (mr::KeyValue& kv : partitions[p]) {
          st = emit_into[0](std::move(kv));
          if (!st.ok()) break;
        }
      }
      if (st.ok()) {
        // Finish hooks cascade into the rest of the chain.
        for (size_t i = 0; i < mappers.size() && st.ok(); ++i) {
          CallbackEmitter emitter(emit_into[i + 1]);
          st = mappers[i]->Finish(&emitter);
          if (st.ok()) st = emitter.status();
        }
      }
      if (st.ok() && has_wide && stages_[chain_end].combiner) {
        // Map-side combine: shrink each outgoing bucket before it ships.
        for (mr::Dataset& bucket : sinks) {
          out->combine_input_records += bucket.size();
          st = CombineBucket(stages_[chain_end].combiner, &bucket);
          if (!st.ok()) break;
        }
      }
      return st;
    };
    FSJOIN_RETURN_NOT_OK(scheduler.RunStage(
        std::move(map_specs), map_body, mr::TaskSideChannel{},
        [&](const mr::TaskSpec& task, mr::TaskOutput out) -> Status {
          const size_t p = task.task_index;
          if (out.buckets.size() != num_buckets) {
            return Status::Internal(
                "flow map task " + std::to_string(p) + " returned " +
                std::to_string(out.buckets.size()) + " buckets, expected " +
                std::to_string(num_buckets));
          }
          combine_counts[p] = out.combine_input_records;
          shuffled[p] = std::move(out.buckets);
          if (!spilling) return Status::OK();
          // Charge each landed bucket; an over-budget charge sends that
          // bucket to disk as a key-sorted run (stable sort, so the run
          // preserves its source's emission order under equal keys).
          for (uint32_t dst = 0; dst < num_buckets; ++dst) {
            mr::Dataset& bucket = shuffled[p][dst];
            if (bucket.empty()) continue;
            const uint64_t bytes = mr::DatasetBytes(bucket);
            if (job_budget->Charge(bytes)) {
              charged[p] += bytes;
              continue;
            }
            job_budget->Release(bytes);
            mr::SortDatasetByKey(&bucket);
            SpillSlot& slot = spill_slots[p][dst];
            slot.path = spill_scratch->path() + "/s" +
                        std::to_string(metrics_.num_shuffles) + "-m" +
                        std::to_string(p) + "-r" + std::to_string(dst) +
                        ".run";
            store::RunWriter writer(slot.path);
            Status st = writer.Open();
            for (const mr::KeyValue& kv : bucket) {
              if (!st.ok()) break;
              st = writer.Add(kv.key, kv.value);
            }
            if (st.ok()) st = writer.Finish();
            FSJOIN_RETURN_NOT_OK(st);
            slot.records = bucket.size();
            slot.bytes = bytes;
            mr::Dataset().swap(bucket);
          }
          return Status::OK();
        }));

    // Assemble the next generation of partitions.
    std::vector<mr::Dataset> next(num_partitions_);
    if (has_wide) {
      ++metrics_.num_shuffles;
      for (uint64_t c : combine_counts) {
        stage_metrics.combine_input_records += c;
      }
      // A destination with any spilled source reduces by streaming a merge
      // of its per-source pieces instead of concatenating them.
      std::vector<bool> merged_dst(num_partitions_, false);
      if (spilling) {
        for (uint32_t src = 0; src < num_partitions_; ++src) {
          for (uint32_t dst = 0; dst < num_partitions_; ++dst) {
            if (!spill_slots[src][dst].path.empty()) merged_dst[dst] = true;
          }
        }
      }
      for (uint32_t dst = 0; dst < num_partitions_; ++dst) {
        if (merged_dst[dst]) {
          // Pieces stay separate for the merge; count what crossed the
          // shuffle boundary from the slots and surviving buckets.
          for (uint32_t src = 0; src < num_partitions_; ++src) {
            const SpillSlot& slot = spill_slots[src][dst];
            if (!slot.path.empty()) {
              stage_metrics.shuffle_records += slot.records;
              stage_metrics.shuffle_bytes += slot.bytes;
              stage_metrics.spilled_bytes += slot.bytes;
              stage_metrics.spill_runs += 1;
            } else {
              stage_metrics.shuffle_records += shuffled[src][dst].size();
              stage_metrics.shuffle_bytes +=
                  mr::DatasetBytes(shuffled[src][dst]);
            }
          }
          continue;
        }
        size_t total = 0;
        for (uint32_t src = 0; src < num_partitions_; ++src) {
          total += shuffled[src][dst].size();
        }
        mr::Dataset bucket;
        bucket.reserve(total);
        for (uint32_t src = 0; src < num_partitions_; ++src) {
          std::move(shuffled[src][dst].begin(), shuffled[src][dst].end(),
                    std::back_inserter(bucket));
          mr::Dataset().swap(shuffled[src][dst]);
        }
        stage_metrics.shuffle_records += bucket.size();
        stage_metrics.shuffle_bytes += mr::DatasetBytes(bucket);
        next[dst] = std::move(bucket);
      }
      metrics_.shuffle_records += stage_metrics.shuffle_records;
      metrics_.shuffle_bytes += stage_metrics.shuffle_bytes;
      metrics_.spilled_bytes += stage_metrics.spilled_bytes;
      metrics_.spill_runs += stage_metrics.spill_runs;
      // Grouped reduce per partition: one reduce task per destination,
      // scheduled and retried like the map pass. The wide stage's side
      // channel lets reducer mutations of shared driver context cross back
      // from forked children.
      const Stage& wide = stages_[chain_end];
      std::vector<mr::Dataset> reduced(num_partitions_);
      std::vector<mr::TaskSpec> red_specs(num_partitions_);
      for (uint32_t p = 0; p < num_partitions_; ++p) {
        mr::TaskSpec& spec = red_specs[p];
        spec.job_name = name_ + "/" + wide.name;
        spec.kind = mr::TaskKind::kReduce;
        spec.task_index = p;
        spec.num_partitions = num_partitions_;
        if (isolated) {
          spec.output_base = spill_scratch->path() + "/p" +
                             std::to_string(pass) + "-red-t" +
                             std::to_string(p);
        }
      }
      mr::TaskBody red_body = [&](const mr::TaskSpec& task,
                                  mr::TaskOutput* out) -> Status {
        const size_t p = task.task_index;
        std::unique_ptr<mr::Reducer> reducer = wide.reducer();
        CallbackEmitter emitter([out](mr::KeyValue kv) -> Status {
          out->records.push_back(std::move(kv));
          return Status::OK();
        });
        if (merged_dst[p]) {
          // Merge this destination's pieces in source order: runs come
          // back sorted off disk, surviving buckets are sorted here, and
          // the loser tree breaks key ties on source index — exactly the
          // order concatenate-then-stable-sort would have produced.
          Status st;
          std::vector<std::unique_ptr<store::RecordStream>> pieces;
          for (uint32_t src = 0; src < num_partitions_ && st.ok(); ++src) {
            const SpillSlot& slot = spill_slots[src][p];
            if (!slot.path.empty()) {
              auto reader = store::RunReader::Open(slot.path);
              if (!reader.ok()) {
                st = reader.status();
                break;
              }
              pieces.push_back(std::move(reader).value());
            } else if (!shuffled[src][p].empty()) {
              mr::SortDatasetByKey(&shuffled[src][p]);
              pieces.push_back(
                  std::make_unique<mr::DatasetStream>(&shuffled[src][p]));
            }
          }
          if (st.ok()) {
            store::LoserTreeMerge merge(std::move(pieces));
            st = mr::ReduceMergedStream(reducer.get(), &merge, &emitter);
          }
          if (st.ok()) st = emitter.status();
          return st;
        }
        mr::SortDatasetByKey(&next[p]);
        Status st = reducer->Setup();
        size_t i = 0;
        // Values are views into the sorted partition's records: grouping
        // performs no per-value copies (same contract as the MR engine).
        std::vector<std::string_view> values;
        while (st.ok() && i < next[p].size()) {
          size_t j = i;
          values.clear();
          while (j < next[p].size() && next[p][j].key == next[p][i].key) {
            values.push_back(next[p][j].value);
            ++j;
          }
          st = reducer->Reduce(next[p][i].key,
                               mr::ValueList(values.data(), values.size()),
                               &emitter);
          i = j;
        }
        if (st.ok()) st = reducer->Finish(&emitter);
        if (st.ok()) st = emitter.status();
        return st;
      };
      FSJOIN_RETURN_NOT_OK(scheduler.RunStage(
          std::move(red_specs), red_body, wide.side,
          [&](const mr::TaskSpec& task, mr::TaskOutput out) -> Status {
            reduced[task.task_index] = std::move(out.records);
            return Status::OK();
          }));
      next = std::move(reduced);
      for (const mr::Dataset& p : next) {
        stage_metrics.output_records += p.size();
        stage_metrics.output_bytes += mr::DatasetBytes(p);
      }
      metrics_.wide_stages.push_back(std::move(stage_metrics));
      s = chain_end + 1;
    } else {
      for (uint32_t p = 0; p < num_partitions_; ++p) {
        next[p] = std::move(shuffled[p][0]);
      }
      s = chain_end;
    }
    partitions = std::move(next);
    for (const mr::Dataset& p : partitions) {
      metrics_.materialized_bytes += mr::DatasetBytes(p);
    }
  }

  mr::Dataset output;
  size_t total = 0;
  for (const mr::Dataset& p : partitions) total += p.size();
  output.reserve(total);
  for (mr::Dataset& p : partitions) {
    std::move(p.begin(), p.end(), std::back_inserter(output));
  }
  metrics_.output_records = output.size();
  metrics_.wall_micros = timer.ElapsedMicros();
  return output;
}

}  // namespace fsjoin::flow
