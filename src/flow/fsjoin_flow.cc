#include "flow/fsjoin_flow.h"

#include <memory>
#include <utility>

#include "core/jobs.h"
#include "core/pivots.h"
#include "util/timer.h"

namespace fsjoin::flow {

Result<FlowJoinOutput> RunFsJoinOnFlow(const Corpus& corpus,
                                       const FsJoinConfig& config) {
  FSJOIN_RETURN_NOT_OK(config.Validate());
  WallTimer timer;
  FlowJoinOutput output;

  const mr::Dataset input = MakeCorpusDataset(corpus);
  const uint32_t partitions = config.num_reduce_tasks;

  // Pipeline 1: ordering. Reuses the MR job's operators verbatim.
  mr::JobConfig ordering =
      MakeOrderingJobConfig(config.num_map_tasks, config.num_reduce_tasks);
  Pipeline ordering_pipeline("ordering", config.num_threads, partitions);
  ordering_pipeline.FlatMap("tokenize", ordering.mapper_factory)
      .GroupByKey("sum", ordering.reducer_factory);
  FSJOIN_ASSIGN_OR_RETURN(mr::Dataset frequencies,
                          ordering_pipeline.Run(input));
  output.report.ordering = ordering_pipeline.metrics();
  FSJOIN_ASSIGN_OR_RETURN(
      GlobalOrder order,
      BuildGlobalOrderFromJobOutput(frequencies, corpus.dictionary.size()));
  auto shared_order = std::make_shared<const GlobalOrder>(std::move(order));

  // Driver-side pivot selection, identical to the MR driver.
  auto filtering_ctx = std::make_shared<FilteringContext>();
  filtering_ctx->config = config;
  filtering_ctx->order = shared_order;
  filtering_ctx->pivots =
      SelectPivots(*shared_order, config.pivot_strategy,
                   config.num_vertical_partitions > 0
                       ? config.num_vertical_partitions - 1
                       : 0,
                   config.seed);
  if (config.num_horizontal_partitions > 0) {
    std::vector<OrderedRecord> ordered = ApplyGlobalOrder(corpus, *shared_order);
    filtering_ctx->horizontal = HorizontalScheme(
        SelectLengthPivots(ordered, config.num_horizontal_partitions,
                           config.function, config.theta),
        config.function, config.theta);
  }

  // Pipeline 2: filtering + verification fused into one dataflow — the
  // partial overlaps go straight from the fragment-join shuffle into the
  // verification shuffle with no DFS round-trip or identity map job.
  mr::JobConfig filtering = MakeFilteringJobConfig(filtering_ctx);
  auto verification_ctx = std::make_shared<VerificationContext>();
  verification_ctx->config = config;
  mr::JobConfig verification = MakeVerificationJobConfig(verification_ctx);

  Pipeline join_pipeline("filter+verify", config.num_threads, partitions);
  join_pipeline.FlatMap("vertical-split", filtering.mapper_factory)
      .GroupByKey("fragment-join", filtering.reducer_factory,
                  filtering.partitioner)
      .GroupByKey("verify", verification.reducer_factory);
  FSJOIN_ASSIGN_OR_RETURN(mr::Dataset results, join_pipeline.Run(input));
  output.report.join = join_pipeline.metrics();

  FSJOIN_ASSIGN_OR_RETURN(output.pairs, DecodeJoinResults(results));
  output.report.total_wall_ms = timer.ElapsedMillis();
  return output;
}

}  // namespace fsjoin::flow
