#include "tune/tuner.h"

#include <algorithm>

#include "util/string_util.h"

namespace fsjoin::tune {

namespace {

/// Number of disjoint similarity-length windows the sampled lengths span:
/// chains of lengths where consecutive windows cannot hold a θ-similar
/// pair. 1 means every pair already passes the length filter structurally,
/// so horizontal partitioning could only add duplication.
uint32_t CountLengthWindows(std::vector<uint32_t> lengths,
                            SimilarityFunction fn, double theta) {
  if (lengths.empty()) return 0;
  std::sort(lengths.begin(), lengths.end());
  uint32_t windows = 1;
  uint32_t head = lengths.front();
  for (uint32_t len : lengths) {
    if (PartnerSizeLowerBound(fn, theta, len) > head) {
      ++windows;
      head = len;
    }
  }
  return windows;
}

}  // namespace

TunePlan PlanTuning(const Corpus& corpus, const GlobalOrder& order,
                    const TuneOptions& options) {
  TunePlan plan;
  const SampleStats stats = SampleCorpusStatsRS(
      corpus, options.sample_rate, options.seed, options.rs_boundary);
  plan.sampled_records = stats.sampled_records;
  plan.total_records = stats.total_records;
  plan.log_lines.push_back(StrFormat(
      "sample: rate=%.2f -> %llu/%llu records, %llu tokens", stats.rate,
      static_cast<unsigned long long>(stats.sampled_records),
      static_cast<unsigned long long>(stats.total_records),
      static_cast<unsigned long long>(stats.sampled_tokens)));
  if (options.rs_boundary.has_value()) {
    plan.log_lines.push_back(StrFormat(
        "rs: boundary=%u, sampled %llu probe (R) + %llu build (S) records",
        static_cast<unsigned>(*options.rs_boundary),
        static_cast<unsigned long long>(stats.sampled_probe),
        static_cast<unsigned long long>(stats.sampled_build)));
  }

  PivotPlan pivot_plan = RefinePivots(corpus, order, stats,
                                      options.num_fragments,
                                      options.skew_factor);
  plan.pivots = std::move(pivot_plan.pivots);
  plan.est_fragment_load = std::move(pivot_plan.est_load);
  uint64_t max_load = 0, total_load = 0;
  uint32_t num_heavy = 0;
  for (size_t f = 0; f < plan.est_fragment_load.size(); ++f) {
    max_load = std::max(max_load, plan.est_fragment_load[f]);
    total_load += plan.est_fragment_load[f];
    num_heavy += pivot_plan.heavy[f];
  }
  const double mean_load =
      plan.est_fragment_load.empty()
          ? 0.0
          : static_cast<double>(total_load) /
                static_cast<double>(plan.est_fragment_load.size());
  plan.log_lines.push_back(StrFormat(
      "pivots: chose %zu fragments (configured %u; est cost max/mean=%.2f)",
      plan.est_fragment_load.size(), options.num_fragments,
      mean_load > 0 ? static_cast<double>(max_load) / mean_load : 0.0));

  // Horizontal t: worth paying only when (a) some fragment is heavy enough
  // that cutting its quadratic loop matters, and (b) the sampled length
  // distribution spans more than one similarity window, so length groups
  // actually prune pairs instead of just duplicating segments.
  const uint32_t windows =
      CountLengthWindows(stats.sampled_lengths, options.function,
                         options.theta);
  if (num_heavy > 0 && windows >= 2) {
    plan.horizontal_t =
        std::min(options.max_horizontal, windows - 1);
    plan.split_fragment = std::move(pivot_plan.heavy);
    plan.log_lines.push_back(StrFormat(
        "horizontal: t=%u, splitting %u/%zu heavy fragments (%u length "
        "windows sampled)",
        plan.horizontal_t, num_heavy, plan.est_fragment_load.size(),
        windows));
  } else {
    plan.horizontal_t = 0;
    plan.log_lines.push_back(StrFormat(
        "horizontal: off (%u heavy fragments, %u length windows sampled)",
        num_heavy, windows));
  }
  return plan;
}

}  // namespace fsjoin::tune
