#ifndef FSJOIN_TUNE_PIVOT_REFINER_H_
#define FSJOIN_TUNE_PIVOT_REFINER_H_

#include <cstdint>
#include <vector>

#include "sim/global_order.h"
#include "text/corpus.h"
#include "tune/stats.h"

namespace fsjoin::tune {

/// Refined vertical pivots plus the per-fragment cost estimates they were
/// optimized against.
struct PivotPlan {
  /// Strictly increasing pivot ranks (at most num_fragments - 1; fewer when
  /// merging fragments lowers total cost or the rank domain is too small) —
  /// same contract as core SelectPivots.
  std::vector<TokenRank> pivots;
  /// Estimated join cost of each fragment (sample-scaled candidate pairs
  /// plus a linear scan term). One entry per fragment; empty when the
  /// sample was empty.
  std::vector<uint64_t> est_load;
  /// est_load[v] > skew_factor x mean — the fragments skew-triggered
  /// horizontal splitting should split.
  std::vector<uint8_t> heavy;
};

/// Refines vertical pivots from the sample (DESIGN.md §5i).
///
/// Even-TF balances *token frequency* per fragment, but the wall time of
/// the filtering phase tracks the TOTAL join cost — roughly sum over
/// fragments of (#segments)^2/2 candidate pairs plus a linear scan term —
/// and segment counts are not additive across a pivot move: a record
/// contributes one segment to every fragment it touches, so spreading a
/// universally-shared frequent-token head across k fragments multiplies
/// its quadratic cost by k. The refiner therefore cuts the rank domain
/// into fine-grained Even-TF chunks, measures per-chunk sampled token
/// counts and per-record chunk-touch sets (giving exact distinct segment
/// counts for every contiguous chunk range), and picks the contiguous
/// partition into AT MOST num_fragments groups that minimizes total
/// estimated cost by dynamic programming. Balance across fragments is the
/// morsel pool's job (work-stealing inside big fragments), not the
/// pivots'; the per-fragment estimates still feed the heavy flags so
/// skew-triggered horizontal splitting knows where the mass ended up.
///
/// Falls back to plain Even-TF boundaries when the sample is empty (tiny
/// corpora at low rates). Deterministic for fixed inputs.
PivotPlan RefinePivots(const Corpus& corpus, const GlobalOrder& order,
                       const SampleStats& stats, uint32_t num_fragments,
                       double skew_factor, uint32_t chunks_per_fragment = 8);

}  // namespace fsjoin::tune

#endif  // FSJOIN_TUNE_PIVOT_REFINER_H_
