#include "tune/pivot_refiner.h"

#include <algorithm>
#include <cmath>

namespace fsjoin::tune {

namespace {

/// Even-TF chunking of the rank domain: up to `count` strictly increasing
/// boundaries so each chunk carries ~equal total term frequency (the same
/// rule core's Even-TF pivot strategy uses, just finer-grained).
std::vector<TokenRank> EvenTfBoundaries(const GlobalOrder& order,
                                        uint32_t count) {
  std::vector<TokenRank> boundaries;
  const size_t n = order.NumTokens();
  if (count == 0 || n < 2) return boundaries;
  const uint64_t total = order.TotalFrequency();
  if (total == 0) {
    // Degenerate: no frequencies — equally spaced ranks.
    for (uint32_t k = 1; k <= count; ++k) {
      const TokenRank r = static_cast<TokenRank>(
          static_cast<uint64_t>(k) * n / (count + 1));
      if (r > 0 && (boundaries.empty() || r > boundaries.back()) && r < n) {
        boundaries.push_back(r);
      }
    }
    return boundaries;
  }
  uint64_t acc = 0;
  uint32_t next = 1;
  for (TokenRank r = 0; r < n && next <= count; ++r) {
    acc += order.FrequencyAt(r);
    // Boundary after rank r once this chunk reached its frequency share.
    if (acc * (count + 1) >= static_cast<uint64_t>(next) * total &&
        r + 1 < n) {
      boundaries.push_back(r + 1);
      ++next;
    }
  }
  return boundaries;
}

/// Chunk index of a rank for boundaries b: the number of b[i] <= rank.
size_t ChunkOf(const std::vector<TokenRank>& boundaries, TokenRank rank) {
  return static_cast<size_t>(
      std::upper_bound(boundaries.begin(), boundaries.end(), rank) -
      boundaries.begin());
}

}  // namespace

PivotPlan RefinePivots(const Corpus& corpus, const GlobalOrder& order,
                       const SampleStats& stats, uint32_t num_fragments,
                       double skew_factor, uint32_t chunks_per_fragment) {
  PivotPlan plan;
  if (num_fragments == 0) num_fragments = 1;
  const uint32_t want_pivots = num_fragments - 1;
  if (chunks_per_fragment == 0) chunks_per_fragment = 1;

  // Fine-grained Even-TF candidate boundaries; final pivots are a subset.
  // Chunk count is capped so the O(chunks^2) cost tables stay around a
  // megabyte no matter how many fragments the run configures.
  const uint32_t want_chunks =
      std::min<uint32_t>(num_fragments * chunks_per_fragment, 256);
  std::vector<TokenRank> boundaries =
      EvenTfBoundaries(order, want_chunks > 0 ? want_chunks - 1 : 0);
  const size_t num_chunks = boundaries.size() + 1;

  // Sampled per-chunk token counts plus, per record, which chunks it
  // touches. A record contributes one segment to every *fragment* (chunk
  // group) it has a token in, so the per-group segment count is a distinct
  // count, NOT a sum over chunks: merging two chunks both touched by the
  // same record yields one segment, not two. The prev[] trick below makes
  // every contiguous group's distinct count computable from prefix sums:
  // a record touches group [lo, hi) iff it touches some chunk c in the
  // range whose previous touched chunk is < lo — and that c is unique.
  std::vector<uint64_t> chunk_tokens(num_chunks, 0);
  // add[c * (num_chunks + 1) + p]: records touching chunk c whose previous
  // touched chunk is p - 1 (p == 0 means c is the record's first chunk).
  std::vector<uint32_t> add((num_chunks) * (num_chunks + 1), 0);
  std::vector<size_t> touch;  // scratch: this record's touched chunks
  uint64_t sampled_total = 0;
  for (const Record& rec : corpus.records) {
    if (!SampleIncludesRecord(stats.seed, rec.id, stats.rate)) continue;
    touch.clear();
    for (TokenId t : rec.tokens) {
      const size_t c = ChunkOf(boundaries, order.RankOf(t));
      ++chunk_tokens[c];
      ++sampled_total;
      touch.push_back(c);
    }
    // Record tokens are sorted by id, not rank — sort the chunk list.
    std::sort(touch.begin(), touch.end());
    touch.erase(std::unique(touch.begin(), touch.end()), touch.end());
    for (size_t i = 0; i < touch.size(); ++i) {
      const size_t p = i == 0 ? 0 : touch[i - 1] + 1;
      ++add[touch[i] * (num_chunks + 1) + p];
    }
  }

  if (sampled_total == 0) {
    // Empty sample (or empty corpus): plain Even-TF pivots, no skew signal.
    plan.pivots = EvenTfBoundaries(order, want_pivots);
    plan.est_load.assign(plan.pivots.size() + 1, 0);
    plan.heavy.assign(plan.pivots.size() + 1, 0);
    return plan;
  }

  // first_touch[c][lo] = records touching chunk c whose previous touched
  // chunk is < lo; then segs([lo, hi)) = sum_{c in [lo, hi)} first_touch[c][lo].
  // A record's previous touched chunk is < lo iff its bucket p = prev + 1
  // is <= lo, so the prefix sum over p must INCLUDE bucket lo (p = 0 is
  // "no previous chunk", counted for every lo).
  std::vector<uint32_t> first_touch(num_chunks * (num_chunks + 1), 0);
  for (size_t c = 0; c < num_chunks; ++c) {
    uint32_t acc = 0;
    for (size_t lo = 0; lo <= num_chunks; ++lo) {
      acc += add[c * (num_chunks + 1) + lo];
      first_touch[c * (num_chunks + 1) + lo] = acc;
    }
  }
  std::vector<uint64_t> tok_prefix(num_chunks + 1, 0);
  for (size_t c = 0; c < num_chunks; ++c) {
    tok_prefix[c + 1] = tok_prefix[c] + chunk_tokens[c];
  }

  // Estimated join cost of fragment [lo, hi): candidate pairs plus a linear
  // scan/shuffle term, Horvitz–Thompson scaled from the sample. Pairs are
  // the driver — a fragment touched by S records considers ~S^2/2 pairs —
  // which is why minimizing the TOTAL cost (not just balancing the max)
  // matters: spreading a universally-shared token head across k fragments
  // multiplies the quadratic term by k. Wall time is the sum; stragglers
  // inside one big fragment are the morsel pool's job, not the pivots'.
  const double inv_rate = 1.0 / stats.rate;
  std::vector<double> cost(num_chunks * (num_chunks + 1), 0.0);
  for (size_t lo = 0; lo < num_chunks; ++lo) {
    uint64_t segs = 0;
    for (size_t hi = lo + 1; hi <= num_chunks; ++hi) {
      segs += first_touch[(hi - 1) * (num_chunks + 1) + lo];
      const double s = static_cast<double>(segs) * inv_rate;
      const double toks =
          static_cast<double>(tok_prefix[hi] - tok_prefix[lo]) * inv_rate;
      cost[lo * (num_chunks + 1) + hi] = 0.5 * s * (s - 1.0) + toks;
    }
  }

  // Contiguous partition of the chunks into at most num_fragments groups
  // minimizing total estimated cost. Allowed to choose FEWER groups: on
  // skewed corpora the optimum often concentrates the frequent-token tail
  // into one fragment instead of paying its quadratic cost repeatedly.
  const double kInf = 1e300;
  const size_t stride = num_chunks + 1;
  std::vector<double> dp_prev(num_chunks + 1, kInf);
  std::vector<double> dp_cur(num_chunks + 1, kInf);
  // back[g][i]: split point j achieving dp[g][i].
  std::vector<uint32_t> back(
      static_cast<size_t>(num_fragments) * (num_chunks + 1), 0);
  for (size_t i = 1; i <= num_chunks; ++i) dp_prev[i] = cost[0 * stride + i];
  double best_total = dp_prev[num_chunks];
  uint32_t best_groups = 1;
  for (uint32_t g = 2; g <= num_fragments && g <= num_chunks; ++g) {
    std::fill(dp_cur.begin(), dp_cur.end(), kInf);
    for (size_t i = g; i <= num_chunks; ++i) {
      for (size_t j = g - 1; j < i; ++j) {
        const double candidate = dp_prev[j] + cost[j * stride + i];
        if (candidate < dp_cur[i]) {
          dp_cur[i] = candidate;
          back[(g - 1) * stride + i] = static_cast<uint32_t>(j);
        }
      }
    }
    if (dp_cur[num_chunks] < best_total) {
      best_total = dp_cur[num_chunks];
      best_groups = g;
    }
    dp_prev.swap(dp_cur);
  }

  // Reconstruct the winning cut. back[] rows were filled for every g, so
  // walking from (best_groups, num_chunks) recovers the boundary chunks.
  std::vector<size_t> cut_starts(best_groups, 0);
  {
    size_t i = num_chunks;
    for (uint32_t g = best_groups; g >= 2; --g) {
      const size_t j = back[(g - 1) * stride + i];
      cut_starts[g - 1] = j;
      i = j;
    }
  }
  for (uint32_t g = 1; g < best_groups; ++g) {
    plan.pivots.push_back(boundaries[cut_starts[g] - 1]);
  }
  while (plan.pivots.size() > want_pivots) plan.pivots.pop_back();

  // Per-fragment cost estimates and heavy flags under the chosen pivots.
  const size_t frags = plan.pivots.size() + 1;
  plan.est_load.assign(frags, 0);
  for (size_t f = 0; f < frags; ++f) {
    const size_t lo = f == 0 ? 0 : cut_starts[f];
    const size_t hi = f + 1 < frags ? cut_starts[f + 1] : num_chunks;
    plan.est_load[f] = static_cast<uint64_t>(cost[lo * stride + hi]);
  }
  double mean = 0;
  for (uint64_t l : plan.est_load) mean += static_cast<double>(l);
  mean /= static_cast<double>(frags);
  plan.heavy.assign(frags, 0);
  for (size_t f = 0; f < frags; ++f) {
    plan.heavy[f] =
        mean > 0 && static_cast<double>(plan.est_load[f]) > skew_factor * mean
            ? 1
            : 0;
  }
  return plan;
}

}  // namespace fsjoin::tune
