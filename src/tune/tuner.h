#ifndef FSJOIN_TUNE_TUNER_H_
#define FSJOIN_TUNE_TUNER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/global_order.h"
#include "sim/similarity.h"
#include "text/corpus.h"
#include "tune/decision.h"
#include "tune/pivot_refiner.h"
#include "tune/stats.h"

namespace fsjoin::tune {

/// Inputs of one tuning pass (the --auto mode's driver-side half).
struct TuneOptions {
  /// Record-sampling rate in (0, 1]; <= 0 means kDefaultSampleRate.
  double sample_rate = 0.0;
  uint64_t seed = 7;
  /// Fragment count the pivots are refined for (the run's configured
  /// vertical partition count; the tuner places boundaries, it does not
  /// change the count).
  uint32_t num_fragments = 8;
  SimilarityFunction function = SimilarityFunction::kJaccard;
  double theta = 0.8;
  /// A fragment is heavy past skew_factor x mean estimated load. The
  /// total-cost pivot DP deliberately concentrates an unsplittable
  /// frequent-token head into one fragment rather than duplicating its
  /// quadratic cost, so a 2x-mean fragment is the expected signature of
  /// skew the vertical cut could not remove — exactly what horizontal
  /// splitting is for.
  double skew_factor = 2.0;
  /// Cap on the auto-chosen horizontal t.
  uint32_t max_horizontal = 4;
  /// Two-collection joins: the R/S boundary of the merged corpus. The
  /// sample pass stratifies across it (both sides always contribute — see
  /// SampleCorpusStatsRS), so pivots and horizontal t are planned for the
  /// union token distribution, not whichever side the Bernoulli draw
  /// happened to hit.
  std::optional<RecordId> rs_boundary;
};

/// Everything the driver needs to configure the run: refined pivots, the
/// horizontal-t / skew-split decision, and human-readable resolved-choice
/// lines for the job report.
struct TunePlan {
  std::vector<TokenRank> pivots;
  /// Auto-chosen horizontal pivot count (0 = horizontal partitioning off).
  uint32_t horizontal_t = 0;
  /// Per-fragment skew flags (size = #fragments) when horizontal_t > 0:
  /// only flagged fragments pay the horizontal duplication; the rest
  /// collapse to one length group. Empty when horizontal_t == 0.
  std::vector<uint8_t> split_fragment;
  std::vector<uint64_t> est_fragment_load;
  uint64_t sampled_records = 0;
  uint64_t total_records = 0;
  /// Resolved-choice lines ("pivots: ...", "horizontal: ...") for the
  /// report, PR 6 kernel-logging style.
  std::vector<std::string> log_lines;
};

/// Runs the sample pass and both driver-side decisions. Deterministic for
/// fixed (corpus, order, options); O(sample tokens) beyond the Even-TF
/// boundary walk.
TunePlan PlanTuning(const Corpus& corpus, const GlobalOrder& order,
                    const TuneOptions& options);

}  // namespace fsjoin::tune

#endif  // FSJOIN_TUNE_TUNER_H_
