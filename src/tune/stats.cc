#include "tune/stats.h"

#include "util/hash.h"

namespace fsjoin::tune {

bool SampleIncludesRecord(uint64_t seed, RecordId rid, double rate) {
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  // Fixed per-record uniform in [0, 1): 53 mantissa bits of a mixed hash.
  const uint64_t h = Mix64(seed ^ Mix64(static_cast<uint64_t>(rid) + 1));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

SampleStats SampleCorpusStats(const Corpus& corpus, double rate,
                              uint64_t seed) {
  return SampleCorpusStatsRS(corpus, rate, seed, std::nullopt);
}

namespace {

/// The fixed per-record uniform behind SampleIncludesRecord, exposed so the
/// R-S pass can pick a side's most-likely-sampled record deterministically.
double RecordUniform(uint64_t seed, RecordId rid) {
  const uint64_t h = Mix64(seed ^ Mix64(static_cast<uint64_t>(rid) + 1));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

SampleStats SampleCorpusStatsRS(const Corpus& corpus, double rate,
                                uint64_t seed,
                                std::optional<RecordId> rs_boundary) {
  SampleStats stats;
  if (rate <= 0.0) rate = kDefaultSampleRate;
  if (rate > 1.0) rate = 1.0;
  stats.rate = rate;
  stats.seed = seed;
  stats.total_records = corpus.records.size();
  stats.sampled_frequency.assign(corpus.dictionary.size(), 0);
  const auto accumulate = [&](const Record& rec, bool probe_side) {
    ++stats.sampled_records;
    if (rs_boundary.has_value()) {
      if (probe_side) {
        ++stats.sampled_probe;
      } else {
        ++stats.sampled_build;
      }
    }
    stats.sampled_tokens += rec.tokens.size();
    stats.sampled_lengths.push_back(static_cast<uint32_t>(rec.tokens.size()));
    for (TokenId t : rec.tokens) ++stats.sampled_frequency[t];
  };
  // Per side: the record with the smallest fixed uniform — the one any
  // higher sampling rate would include first — as the stratification
  // fallback when the Bernoulli draw leaves the side empty.
  const Record* min_u_rec[2] = {nullptr, nullptr};
  double min_u[2] = {2.0, 2.0};
  bool side_sampled[2] = {false, false};
  for (const Record& rec : corpus.records) {
    const bool probe_side = !rs_boundary.has_value() || rec.id < *rs_boundary;
    if (SampleIncludesRecord(seed, rec.id, rate)) {
      accumulate(rec, probe_side);
      side_sampled[probe_side ? 0 : 1] = true;
    } else if (rs_boundary.has_value()) {
      const double u = RecordUniform(seed, rec.id);
      const int side = probe_side ? 0 : 1;
      if (u < min_u[side]) {
        min_u[side] = u;
        min_u_rec[side] = &rec;
      }
    }
  }
  if (rs_boundary.has_value()) {
    for (int side = 0; side < 2; ++side) {
      if (!side_sampled[side] && min_u_rec[side] != nullptr) {
        accumulate(*min_u_rec[side], side == 0);
      }
    }
  }
  return stats;
}

}  // namespace fsjoin::tune
