#include "tune/stats.h"

#include "util/hash.h"

namespace fsjoin::tune {

bool SampleIncludesRecord(uint64_t seed, RecordId rid, double rate) {
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  // Fixed per-record uniform in [0, 1): 53 mantissa bits of a mixed hash.
  const uint64_t h = Mix64(seed ^ Mix64(static_cast<uint64_t>(rid) + 1));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

SampleStats SampleCorpusStats(const Corpus& corpus, double rate,
                              uint64_t seed) {
  SampleStats stats;
  if (rate <= 0.0) rate = kDefaultSampleRate;
  if (rate > 1.0) rate = 1.0;
  stats.rate = rate;
  stats.seed = seed;
  stats.total_records = corpus.records.size();
  stats.sampled_frequency.assign(corpus.dictionary.size(), 0);
  for (const Record& rec : corpus.records) {
    if (!SampleIncludesRecord(seed, rec.id, rate)) continue;
    ++stats.sampled_records;
    stats.sampled_tokens += rec.tokens.size();
    stats.sampled_lengths.push_back(static_cast<uint32_t>(rec.tokens.size()));
    for (TokenId t : rec.tokens) ++stats.sampled_frequency[t];
  }
  return stats;
}

}  // namespace fsjoin::tune
