#ifndef FSJOIN_TUNE_STATS_H_
#define FSJOIN_TUNE_STATS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "text/corpus.h"

namespace fsjoin::tune {

/// Default record-sampling rate of the tuner's statistics pass: 5% keeps
/// the pass well under the ordering job's cost on every bench corpus while
/// the per-fragment load estimates stay within a few percent of exact
/// (tune_test measures the convergence).
inline constexpr double kDefaultSampleRate = 0.05;

/// Whether record `rid` belongs to the seeded sample at `rate`.
///
/// Bernoulli per record with a *fixed* per-record uniform: u(rid) is derived
/// from hash(seed, rid) once, and the record is included iff u(rid) < rate.
/// This makes samples **nested** — the sample at rate r1 is a subset of the
/// sample at any r2 >= r1 — so estimates converge monotonically in
/// expectation as rate -> 1, and at rate 1.0 the sample is exactly the
/// corpus (sampled frequencies equal the dictionary counts, no residual
/// noise). Exposed so the refiner and the property tests agree on
/// membership without materializing record lists.
bool SampleIncludesRecord(uint64_t seed, RecordId rid, double rate);

/// Token-frequency and length statistics over a seeded record sample — the
/// raw inputs of the pivot refiner and the horizontal-t choice.
struct SampleStats {
  double rate = 1.0;            ///< requested inclusion rate in (0, 1]
  uint64_t seed = 0;            ///< membership seed (SampleIncludesRecord)
  uint64_t sampled_records = 0;
  uint64_t total_records = 0;
  uint64_t sampled_tokens = 0;  ///< set elements across sampled records
  /// R-S sampling only (both zero on self-join passes): how the sample
  /// splits across the probe (R) and build (S) sides of the boundary.
  uint64_t sampled_probe = 0;
  uint64_t sampled_build = 0;

  /// Raw per-token occurrence counts within the sample (size = vocab).
  std::vector<uint64_t> sampled_frequency;
  /// |tokens| of every sampled record, corpus order.
  std::vector<uint32_t> sampled_lengths;

  /// Horvitz–Thompson estimate of the exact dictionary frequency:
  /// count / rate. Equals the dictionary count exactly at rate 1.0.
  double EstimatedFrequency(TokenId t) const {
    return static_cast<double>(sampled_frequency[t]) / rate;
  }
};

/// One pass over the corpus: draws the seeded sample at `rate` (clamped to
/// (0, 1]; <= 0 means kDefaultSampleRate) and accumulates the statistics
/// above. Deterministic for a fixed corpus, rate and seed.
SampleStats SampleCorpusStats(const Corpus& corpus, double rate,
                              uint64_t seed);

/// R-S variant over a merged corpus: samples both sides of `rs_boundary`
/// with the same seeded membership, then guarantees every *non-empty* side
/// contributes at least one record by force-including the side's
/// smallest-uniform record when the Bernoulli draw left it empty. Without
/// the guarantee a tiny S (or R) would routinely sample to nothing and the
/// tuner would plan pivots for a one-sided token distribution. The forced
/// inclusion is deterministic (same hash the membership test uses), so the
/// pass stays reproducible across backends and runners. With rs_boundary
/// unset this is exactly SampleCorpusStats above.
SampleStats SampleCorpusStatsRS(const Corpus& corpus, double rate,
                                uint64_t seed,
                                std::optional<RecordId> rs_boundary);

}  // namespace fsjoin::tune

#endif  // FSJOIN_TUNE_STATS_H_
