#include "tune/decision.h"

#include "util/simd.h"

namespace fsjoin::tune {

FragmentPlan ChooseFragmentPlan(const FragmentShape& shape,
                                const TuningPolicy& policy) {
  FragmentPlan plan;
  const uint32_t n = shape.num_segments;
  const uint32_t avg_len =
      n == 0 ? 0
             : static_cast<uint32_t>(shape.total_tokens / n);

  if (n <= policy.loop_max_segments) {
    plan.method = JoinMethod::kLoop;
  } else if (avg_len <= policy.index_max_avg_len) {
    plan.method = JoinMethod::kIndex;
  } else {
    plan.method = JoinMethod::kPrefix;
  }

  // kScalar is never chosen: it is the verification baseline, dominated by
  // kPacked at every measured length (BENCH_kernels.json crossover sweep).
  if (SimdAvailable() && avg_len >= policy.simd_min_avg_len) {
    plan.kernel = exec::KernelMode::kSimd;
  } else {
    plan.kernel = exec::KernelMode::kPacked;
  }
  return plan;
}

}  // namespace fsjoin::tune
