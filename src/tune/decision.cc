#include "tune/decision.h"

#include "util/simd.h"

namespace fsjoin::tune {

FragmentPlan ChooseFragmentPlan(const FragmentShape& shape,
                                const TuningPolicy& policy) {
  FragmentPlan plan;
  const uint32_t n = shape.num_segments;
  const uint32_t avg_len =
      n == 0 ? 0
             : static_cast<uint32_t>(shape.total_tokens / n);

  // Pair space the nested loop would enumerate: n-choose-2 for self-join
  // fragments, probe x build for side-tagged R-S fragments. Comparing pair
  // counts (rather than n) keeps the self-join crossover exactly where the
  // calibration put it — n <= L iff n(n-1)/2 <= L(L-1)/2 — while letting a
  // lopsided R-S fragment (many probes, few builds) stay on the loop path
  // its real cost belongs to.
  const uint64_t m = policy.loop_max_segments;
  const uint64_t loop_max_pairs = m * (m - 1) / 2;
  const uint64_t pair_space =
      shape.IsRs() ? uint64_t{shape.probe_segments} * shape.build_segments
                   : uint64_t{n} * (n - 1) / 2;
  if (pair_space <= loop_max_pairs) {
    plan.method = JoinMethod::kLoop;
  } else if (avg_len <= policy.index_max_avg_len) {
    plan.method = JoinMethod::kIndex;
  } else {
    plan.method = JoinMethod::kPrefix;
  }

  // kScalar is never chosen: it is the verification baseline, dominated by
  // kPacked at every measured length (BENCH_kernels.json crossover sweep).
  if (SimdAvailable() && avg_len >= policy.simd_min_avg_len) {
    plan.kernel = exec::KernelMode::kSimd;
  } else {
    plan.kernel = exec::KernelMode::kPacked;
  }
  return plan;
}

}  // namespace fsjoin::tune
