#ifndef FSJOIN_TUNE_DECISION_H_
#define FSJOIN_TUNE_DECISION_H_

#include <cstdint>

#include "core/fsjoin_config.h"
#include "exec/exec_config.h"

namespace fsjoin::tune {

/// Order-invariant aggregates of one sealed fragment batch — the decision
/// inputs. All three are permutation-invariant over the fragment's
/// segments, so the per-fragment choice is deterministic across backends,
/// runners, thread counts and morsel sizes.
struct FragmentShape {
  uint32_t num_segments = 0;
  uint64_t total_tokens = 0;
  uint32_t max_segment_len = 0;
  /// R-S fragments only (both zero on self-join fragments): how
  /// num_segments splits across the probe (R) and build (S) sides. The
  /// pair space of an R-S fragment is probe x build, not n-choose-2, so a
  /// lopsided split (many probes, few builds) joins far fewer pairs than a
  /// self-join fragment of the same size — the method crossover must see
  /// that asymmetry.
  uint32_t probe_segments = 0;
  uint32_t build_segments = 0;

  bool IsRs() const { return probe_segments + build_segments > 0; }
};

/// Calibrated crossover constants of the per-fragment cost model. The
/// defaults are measured, not guessed: bench_micro_kernels --json sweeps
/// segment lengths 2..512 per kernel family (the "crossover/..." rows of
/// BENCH_kernels.json) and fragment sizes per join method; see DESIGN.md
/// §5i for the measured curves behind each constant.
struct TuningPolicy {
  /// Fragments with at most this many segments run the nested loop: below
  /// the crossover the inverted-index build costs more than the O(n^2)
  /// probe loop it replaces.
  uint32_t loop_max_segments = 24;
  /// Average segment length at or below which the full index join beats
  /// the prefix join: for 1-2 token segments the prefix is the whole
  /// segment, so prefix bookkeeping buys no pruning.
  uint32_t index_max_avg_len = 2;
  /// Average segment length below which the word-packed kernel beats the
  /// vectorized one (per-call SIMD setup dominates tiny merges); at or
  /// above it the SIMD kernel wins. Ignored when the build/CPU has no
  /// vector kernels.
  uint32_t simd_min_avg_len = 8;
};

/// The per-fragment resolved choice.
struct FragmentPlan {
  JoinMethod method = JoinMethod::kPrefix;
  exec::KernelMode kernel = exec::KernelMode::kPacked;
};

/// Picks join method and overlap kernel for one fragment from its shape
/// (DESIGN.md §5i). Pure function of (shape, policy, SimdAvailable()):
/// every kernel/method produces identical join results, so the choice only
/// moves wall time, never output.
FragmentPlan ChooseFragmentPlan(const FragmentShape& shape,
                                const TuningPolicy& policy);

}  // namespace fsjoin::tune

#endif  // FSJOIN_TUNE_DECISION_H_
