#ifndef FSJOIN_SIM_SET_OPS_H_
#define FSJOIN_SIM_SET_OPS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fsjoin {

/// Kernels over sorted, duplicate-free uint32 sequences (token sets ordered
/// by the global ordering). These are the hot loops of every join. The
/// pointer/length forms are the primary entry points (the columnar
/// SegmentBatch hands out raw arena windows); the vector overloads are thin
/// wrappers kept for row-oriented callers.

/// Size-skew crossover for SortedOverlap: once one input is at least this
/// many times longer than the other, probing the long side by exponential
/// search beats scanning it linearly (measured in bench_micro_kernels; the
/// galloping win appears past ~10x skew, so 32 keeps a comfortable margin
/// against its worse constant factor near the break-even point).
inline constexpr std::size_t kGallopRatio = 32;

/// Bitmap-gate dispatch bound for the word-packed overlap kernel: segments
/// with at most this many tokens get the 64-bit summary reject test before
/// the exact merge. Past it the summary saturates (nearly every bucket bit
/// set), so the test can no longer reject and is skipped. Measured in
/// bench_micro_kernels (--json, the overlap_short group): the gate pays for
/// itself whenever even a few percent of candidate pairs are
/// bucket-disjoint, and costs two loads and an AND when not.
inline constexpr std::size_t kPackedMaxTokens = 64;

/// |a ∩ b|. Dispatches between the linear merge and the galloping probe
/// based on kGallopRatio, so heavily skewed pairs (a short fragment against
/// a long record) cost O(|small| * log(|large|/|small|)) instead of
/// O(|a| + |b|).
uint64_t SortedOverlap(const uint32_t* a, std::size_t na, const uint32_t* b,
                       std::size_t nb);

/// |a ∩ b| by linear merge, O(|a| + |b|), regardless of skew. Exposed so
/// benchmarks can measure both strategies; prefer SortedOverlap.
uint64_t LinearOverlap(const uint32_t* a, std::size_t na, const uint32_t* b,
                       std::size_t nb);

/// |a ∩ b| by galloping (exponential) search: walks the smaller input and
/// locates each element in the larger one with doubling probes followed by a
/// binary search over the bracketed range. Exposed so benchmarks can measure
/// both strategies; prefer SortedOverlap.
uint64_t GallopingOverlap(const uint32_t* a, std::size_t na, const uint32_t* b,
                          std::size_t nb);

/// ---- Word-packed summaries ---------------------------------------------
/// A token sequence is summarized as a 64-bit bucket bitmap: token t sets
/// bit ((t - base) >> shift) & 63, i.e. the rank range starting at `base`
/// is cut into 64 buckets of 2^shift consecutive ranks (folding past the
/// 64th bucket). Summaries built with the same (base, shift) satisfy
///   (bitmap(a) & bitmap(b)) == 0  =>  a ∩ b = ∅,
/// a one-AND reject test that skips the exact merge for bucket-disjoint
/// pairs. All segments of one fragment share a rank range (their pivot
/// interval), so a per-fragment (base, shift) keeps the buckets dense with
/// information; SegmentBatch precomputes one summary per segment.

/// Shift such that a range of `span` ranks maps onto at most 64 buckets.
uint32_t BitmapShiftForSpan(uint64_t span);

/// The 64-bit bucket bitmap of a token sequence under (base, shift).
uint64_t TokenBitmap(const uint32_t* data, std::size_t n, uint32_t base,
                     uint32_t shift);

/// Word-packed exact overlap: rejects through the precomputed summaries,
/// falls back to SortedOverlap when the buckets intersect. Exact — the
/// summary test is sound, never lossy.
inline uint64_t PackedOverlap(const uint32_t* a, std::size_t na,
                              uint64_t bitmap_a, const uint32_t* b,
                              std::size_t nb, uint64_t bitmap_b) {
  if ((bitmap_a & bitmap_b) == 0) return 0;
  return SortedOverlap(a, na, b, nb);
}

/// Like SortedOverlap but bails out early (returning 0) as soon as the
/// remaining elements cannot reach `required` — the positional cutoff used
/// by verification in AllPairs/PPJoin.
uint64_t SortedOverlapAtLeast(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b,
                              uint64_t required);

/// ---- Bounded-overlap contract -------------------------------------------
/// The verification-bound kernels below share one contract, chosen so every
/// implementation (scalar, AVX2, NEON) is interchangeable in the join:
///
///   * if |a ∩ b| >= required, the exact overlap is returned;
///   * otherwise SOME value < required is returned (implementations may
///     bail out at different points, so the below-bound value itself is
///     unspecified — only the predicate `result < required` is portable,
///     and it always equals `|a ∩ b| < required`);
///   * required <= 1 therefore forces the exact overlap (a kernel may only
///     stop early when the bound is provably unreachable, which for
///     required <= 1 means the merge already finished).
///
/// Callers must treat a below-bound result as "pruned" and never use the
/// returned value for anything else.

/// Scalar reference implementation of the bounded contract.
uint64_t SortedOverlapBounded(const uint32_t* a, std::size_t na,
                              const uint32_t* b, std::size_t nb,
                              uint64_t required);

/// ---- Vectorized kernels (see util/simd.h) -------------------------------
/// Exact |a ∩ b| dispatched on DetectedSimdIsa(): a broadcast/compare probe
/// for short runs, galloping with a vector block-compare for skewed pairs,
/// and a rotation block-merge for similar-length inputs. Falls back to
/// SortedOverlap on scalar-only builds/CPUs — always exact, any ISA.
uint64_t SimdOverlap(const uint32_t* a, std::size_t na, const uint32_t* b,
                     std::size_t nb);

/// Vectorized bounded-overlap kernel (contract above): stops as soon as
/// `required` is provably unreachable. The fragment join's verification
/// cutoff (SegL/SegI required overlap) goes through this.
uint64_t SimdOverlapBounded(const uint32_t* a, std::size_t na,
                            const uint32_t* b, std::size_t nb,
                            uint64_t required);

/// ---- Container kernels ---------------------------------------------------
/// Roaring-style alternate representations a SegmentBatch may pick per
/// segment at Seal (core/segments.h): a dense word bitset over the
/// fragment's 64-bit-word grid, or a run-length list of consecutive ranks.
/// All kernels compute the exact overlap; pairs mixing representations
/// dispatch to the matching (container x container) kernel.

/// One maximal run of consecutive token ranks: {start, start+1, ...,
/// start+length-1}.
struct TokenRun {
  uint32_t start = 0;
  uint32_t length = 0;
};

/// Number of maximal runs in a sorted, duplicate-free sequence.
std::size_t CountTokenRuns(const uint32_t* data, std::size_t n);

/// Appends the maximal runs of `data` to *out; returns how many were added.
std::size_t AppendTokenRuns(const uint32_t* data, std::size_t n,
                            std::vector<TokenRun>* out);

/// |a ∩ b| of two bitsets on the same word grid: word w of a set covers
/// ranks [base + 64*(w0 + w), base + 64*(w0 + w + 1)). Only the
/// overlapping window is touched.
uint64_t BitsetBitsetOverlap(const uint64_t* a, uint32_t a_word0,
                             uint32_t a_words, const uint64_t* b,
                             uint32_t b_word0, uint32_t b_words);

/// |bitset ∩ sorted array|; `base` anchors the word grid in rank space.
uint64_t BitsetArrayOverlap(const uint64_t* words, uint32_t word0,
                            uint32_t num_words, uint32_t base,
                            const uint32_t* tokens, std::size_t n);

/// |bitset ∩ runs|.
uint64_t BitsetRunsOverlap(const uint64_t* words, uint32_t word0,
                           uint32_t num_words, uint32_t base,
                           const TokenRun* runs, std::size_t num_runs);

/// |runs ∩ runs| — interval-intersection two-pointer merge.
uint64_t RunsRunsOverlap(const TokenRun* a, std::size_t na, const TokenRun* b,
                         std::size_t nb);

/// |runs ∩ sorted array|.
uint64_t RunsArrayOverlap(const TokenRun* runs, std::size_t num_runs,
                          const uint32_t* tokens, std::size_t n);

/// Overlap of the suffixes a[a_start..) and b[b_start..).
uint64_t SortedSuffixOverlap(const std::vector<uint32_t>& a,
                             std::size_t a_start,
                             const std::vector<uint32_t>& b,
                             std::size_t b_start);

/// |a \ b| + |b \ a| (symmetric difference size) by linear merge.
uint64_t SortedSymmetricDifference(const std::vector<uint32_t>& a,
                                   const std::vector<uint32_t>& b);

/// True iff a and b share at least one element.
bool SortedIntersects(const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b);

/// ---- Vector wrappers ----------------------------------------------------

inline uint64_t SortedOverlap(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b) {
  return SortedOverlap(a.data(), a.size(), b.data(), b.size());
}

inline uint64_t LinearOverlap(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b) {
  return LinearOverlap(a.data(), a.size(), b.data(), b.size());
}

inline uint64_t GallopingOverlap(const std::vector<uint32_t>& a,
                                 const std::vector<uint32_t>& b) {
  return GallopingOverlap(a.data(), a.size(), b.data(), b.size());
}

inline uint64_t TokenBitmap(const std::vector<uint32_t>& v, uint32_t base,
                            uint32_t shift) {
  return TokenBitmap(v.data(), v.size(), base, shift);
}

}  // namespace fsjoin

#endif  // FSJOIN_SIM_SET_OPS_H_
