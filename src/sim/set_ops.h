#ifndef FSJOIN_SIM_SET_OPS_H_
#define FSJOIN_SIM_SET_OPS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fsjoin {

/// Kernels over sorted, duplicate-free uint32 sequences (token sets ordered
/// by the global ordering). These are the hot loops of every join.

/// Size-skew crossover for SortedOverlap: once one input is at least this
/// many times longer than the other, probing the long side by exponential
/// search beats scanning it linearly (measured in bench_micro_kernels; the
/// galloping win appears past ~10x skew, so 32 keeps a comfortable margin
/// against its worse constant factor near the break-even point).
inline constexpr std::size_t kGallopRatio = 32;

/// |a ∩ b|. Dispatches between the linear merge and the galloping probe
/// based on kGallopRatio, so heavily skewed pairs (a short fragment against
/// a long record) cost O(|small| * log(|large|/|small|)) instead of
/// O(|a| + |b|).
uint64_t SortedOverlap(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b);

/// |a ∩ b| by linear merge, O(|a| + |b|), regardless of skew. Exposed so
/// benchmarks can measure both strategies; prefer SortedOverlap.
uint64_t LinearOverlap(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b);

/// |a ∩ b| by galloping (exponential) search: walks the smaller input and
/// locates each element in the larger one with doubling probes followed by a
/// binary search over the bracketed range. Exposed so benchmarks can measure
/// both strategies; prefer SortedOverlap.
uint64_t GallopingOverlap(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b);

/// Like SortedOverlap but bails out early (returning 0) as soon as the
/// remaining elements cannot reach `required` — the positional cutoff used
/// by verification in AllPairs/PPJoin.
uint64_t SortedOverlapAtLeast(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b,
                              uint64_t required);

/// Overlap of the suffixes a[a_start..) and b[b_start..).
uint64_t SortedSuffixOverlap(const std::vector<uint32_t>& a,
                             std::size_t a_start,
                             const std::vector<uint32_t>& b,
                             std::size_t b_start);

/// |a \ b| + |b \ a| (symmetric difference size) by linear merge.
uint64_t SortedSymmetricDifference(const std::vector<uint32_t>& a,
                                   const std::vector<uint32_t>& b);

/// True iff a and b share at least one element.
bool SortedIntersects(const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b);

}  // namespace fsjoin

#endif  // FSJOIN_SIM_SET_OPS_H_
