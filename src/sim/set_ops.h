#ifndef FSJOIN_SIM_SET_OPS_H_
#define FSJOIN_SIM_SET_OPS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fsjoin {

/// Kernels over sorted, duplicate-free uint32 sequences (token sets ordered
/// by the global ordering). These are the hot loops of every join.

/// |a ∩ b| by linear merge. O(|a| + |b|).
uint64_t SortedOverlap(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b);

/// Like SortedOverlap but bails out early (returning 0) as soon as the
/// remaining elements cannot reach `required` — the positional cutoff used
/// by verification in AllPairs/PPJoin.
uint64_t SortedOverlapAtLeast(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b,
                              uint64_t required);

/// Overlap of the suffixes a[a_start..) and b[b_start..).
uint64_t SortedSuffixOverlap(const std::vector<uint32_t>& a,
                             std::size_t a_start,
                             const std::vector<uint32_t>& b,
                             std::size_t b_start);

/// |a \ b| + |b \ a| (symmetric difference size) by linear merge.
uint64_t SortedSymmetricDifference(const std::vector<uint32_t>& a,
                                   const std::vector<uint32_t>& b);

/// True iff a and b share at least one element.
bool SortedIntersects(const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b);

}  // namespace fsjoin

#endif  // FSJOIN_SIM_SET_OPS_H_
