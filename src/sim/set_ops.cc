#include "sim/set_ops.h"

#include <algorithm>

namespace fsjoin {

namespace {

/// First index in [from, n) with data[idx] >= x. Doubles the probe distance
/// from `from` until it brackets x, then binary-searches the bracket:
/// O(log d) where d is the distance to the answer, so consecutive probes for
/// an ascending sequence of needles stay cheap.
size_t GallopLowerBound(const uint32_t* data, size_t n, size_t from,
                        uint32_t x) {
  if (from >= n || data[from] >= x) return from;
  // data[from] < x; widen until data[from + bound] >= x or past the end.
  size_t bound = 1;
  while (from + bound < n && data[from + bound] < x) bound *= 2;
  // The answer lies in (from + bound/2, from + bound]; bound/2 was probed.
  const size_t lo = from + bound / 2 + 1;
  const size_t hi = std::min(from + bound, n);
  return static_cast<size_t>(std::lower_bound(data + lo, data + hi, x) - data);
}

}  // namespace

uint64_t LinearOverlap(const uint32_t* a, size_t na, const uint32_t* b,
                       size_t nb) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

uint64_t GallopingOverlap(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb) {
  const uint32_t* small = na <= nb ? a : b;
  const size_t small_n = na <= nb ? na : nb;
  const uint32_t* data = na <= nb ? b : a;
  const size_t n = na <= nb ? nb : na;
  uint64_t count = 0;
  size_t j = 0;
  for (size_t i = 0; i < small_n; ++i) {
    const uint32_t x = small[i];
    j = GallopLowerBound(data, n, j, x);
    if (j == n) break;
    if (data[j] == x) {
      ++count;
      ++j;
    }
  }
  return count;
}

uint64_t SortedOverlap(const uint32_t* a, size_t na, const uint32_t* b,
                       size_t nb) {
  const size_t small = std::min(na, nb);
  const size_t large = std::max(na, nb);
  if (small > 0 && large / small >= kGallopRatio) {
    return GallopingOverlap(a, na, b, nb);
  }
  return LinearOverlap(a, na, b, nb);
}

uint32_t BitmapShiftForSpan(uint64_t span) {
  if (span == 0) return 0;
  uint32_t shift = 0;
  while (((span - 1) >> shift) >= 64) ++shift;
  return shift;
}

uint64_t TokenBitmap(const uint32_t* data, size_t n, uint32_t base,
                     uint32_t shift) {
  uint64_t bitmap = 0;
  for (size_t i = 0; i < n; ++i) {
    bitmap |= uint64_t{1} << (((data[i] - base) >> shift) & 63);
  }
  return bitmap;
}

uint64_t SortedOverlapAtLeast(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b,
                              uint64_t required) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  const size_t na = a.size(), nb = b.size();
  while (i < na && j < nb) {
    // Optimistic bound on the final overlap: matches so far plus everything
    // that could still match. Below `required` means the pair cannot pass.
    uint64_t best = count + static_cast<uint64_t>(std::min(na - i, nb - j));
    if (best < required) return 0;
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count >= required ? count : 0;
}

uint64_t SortedOverlapBounded(const uint32_t* a, size_t na, const uint32_t* b,
                              size_t nb, uint64_t required) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    // Matches so far plus everything that could still match; once that
    // optimistic total drops below `required`, the bound is unreachable and
    // the contract allows returning the (below-bound) partial count.
    if (count + std::min(na - i, nb - j) < required) return count;
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

size_t CountTokenRuns(const uint32_t* data, size_t n) {
  size_t runs = 0;
  for (size_t i = 0; i < n; ++runs) {
    size_t j = i + 1;
    while (j < n && data[j] == data[j - 1] + 1) ++j;
    i = j;
  }
  return runs;
}

size_t AppendTokenRuns(const uint32_t* data, size_t n,
                       std::vector<TokenRun>* out) {
  size_t runs = 0;
  for (size_t i = 0; i < n; ++runs) {
    size_t j = i + 1;
    while (j < n && data[j] == data[j - 1] + 1) ++j;
    out->push_back(TokenRun{data[i], static_cast<uint32_t>(j - i)});
    i = j;
  }
  return runs;
}

uint64_t BitsetBitsetOverlap(const uint64_t* a, uint32_t a_word0,
                             uint32_t a_words, const uint64_t* b,
                             uint32_t b_word0, uint32_t b_words) {
  const uint32_t lo = std::max(a_word0, b_word0);
  const uint32_t a_end = a_word0 + a_words;
  const uint32_t b_end = b_word0 + b_words;
  const uint32_t hi = std::min(a_end, b_end);
  uint64_t count = 0;
  for (uint32_t w = lo; w < hi; ++w) {
    count += static_cast<uint64_t>(
        __builtin_popcountll(a[w - a_word0] & b[w - b_word0]));
  }
  return count;
}

uint64_t BitsetArrayOverlap(const uint64_t* words, uint32_t word0,
                            uint32_t num_words, uint32_t base,
                            const uint32_t* tokens, size_t n) {
  const uint64_t lo = base + uint64_t{64} * word0;
  const uint64_t hi = lo + uint64_t{64} * num_words;
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t t = tokens[i];
    if (t < lo) continue;
    if (t >= hi) break;
    const uint64_t off = t - lo;
    count += (words[off >> 6] >> (off & 63)) & 1;
  }
  return count;
}

uint64_t BitsetRunsOverlap(const uint64_t* words, uint32_t word0,
                           uint32_t num_words, uint32_t base,
                           const TokenRun* runs, size_t num_runs) {
  const uint64_t lo = base + uint64_t{64} * word0;
  const uint64_t hi = lo + uint64_t{64} * num_words;
  uint64_t count = 0;
  for (size_t r = 0; r < num_runs; ++r) {
    // Clip the run [start, start+length) to the bitset's rank window, then
    // popcount the covered bits word by word with the edges masked.
    uint64_t start = runs[r].start;
    uint64_t end = start + runs[r].length;
    if (end <= lo) continue;
    if (start >= hi) break;
    start = std::max(start, lo) - lo;
    end = std::min(end, hi) - lo;
    uint64_t w = start >> 6;
    const uint64_t w_end = (end - 1) >> 6;
    uint64_t mask = ~uint64_t{0} << (start & 63);
    for (; w < w_end; ++w, mask = ~uint64_t{0}) {
      count += static_cast<uint64_t>(__builtin_popcountll(words[w] & mask));
    }
    mask &= ~uint64_t{0} >> (63 - ((end - 1) & 63));
    count += static_cast<uint64_t>(__builtin_popcountll(words[w] & mask));
  }
  return count;
}

uint64_t RunsRunsOverlap(const TokenRun* a, size_t na, const TokenRun* b,
                         size_t nb) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    const uint64_t a_end = uint64_t{a[i].start} + a[i].length;
    const uint64_t b_end = uint64_t{b[j].start} + b[j].length;
    const uint64_t lo = std::max(a[i].start, b[j].start);
    const uint64_t hi = std::min(a_end, b_end);
    if (hi > lo) count += hi - lo;
    if (a_end <= b_end) ++i;
    if (b_end <= a_end) ++j;
  }
  return count;
}

uint64_t RunsArrayOverlap(const TokenRun* runs, size_t num_runs,
                          const uint32_t* tokens, size_t n) {
  uint64_t count = 0;
  size_t i = 0;
  for (size_t r = 0; r < num_runs && i < n; ++r) {
    const uint32_t start = runs[r].start;
    const uint64_t end = uint64_t{start} + runs[r].length;
    while (i < n && tokens[i] < start) ++i;
    while (i < n && tokens[i] < end) {
      ++count;
      ++i;
    }
  }
  return count;
}

uint64_t SortedSuffixOverlap(const std::vector<uint32_t>& a,
                             std::size_t a_start,
                             const std::vector<uint32_t>& b,
                             std::size_t b_start) {
  uint64_t count = 0;
  size_t i = a_start, j = b_start;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

uint64_t SortedSymmetricDifference(const std::vector<uint32_t>& a,
                                   const std::vector<uint32_t>& b) {
  uint64_t overlap = SortedOverlap(a, b);
  return a.size() + b.size() - 2 * overlap;
}

bool SortedIntersects(const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace fsjoin
