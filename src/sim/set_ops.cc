#include "sim/set_ops.h"

#include <algorithm>

namespace fsjoin {

namespace {

/// First index in [from, n) with data[idx] >= x. Doubles the probe distance
/// from `from` until it brackets x, then binary-searches the bracket:
/// O(log d) where d is the distance to the answer, so consecutive probes for
/// an ascending sequence of needles stay cheap.
size_t GallopLowerBound(const uint32_t* data, size_t n, size_t from,
                        uint32_t x) {
  if (from >= n || data[from] >= x) return from;
  // data[from] < x; widen until data[from + bound] >= x or past the end.
  size_t bound = 1;
  while (from + bound < n && data[from + bound] < x) bound *= 2;
  // The answer lies in (from + bound/2, from + bound]; bound/2 was probed.
  const size_t lo = from + bound / 2 + 1;
  const size_t hi = std::min(from + bound, n);
  return static_cast<size_t>(std::lower_bound(data + lo, data + hi, x) - data);
}

}  // namespace

uint64_t LinearOverlap(const uint32_t* a, size_t na, const uint32_t* b,
                       size_t nb) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

uint64_t GallopingOverlap(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb) {
  const uint32_t* small = na <= nb ? a : b;
  const size_t small_n = na <= nb ? na : nb;
  const uint32_t* data = na <= nb ? b : a;
  const size_t n = na <= nb ? nb : na;
  uint64_t count = 0;
  size_t j = 0;
  for (size_t i = 0; i < small_n; ++i) {
    const uint32_t x = small[i];
    j = GallopLowerBound(data, n, j, x);
    if (j == n) break;
    if (data[j] == x) {
      ++count;
      ++j;
    }
  }
  return count;
}

uint64_t SortedOverlap(const uint32_t* a, size_t na, const uint32_t* b,
                       size_t nb) {
  const size_t small = std::min(na, nb);
  const size_t large = std::max(na, nb);
  if (small > 0 && large / small >= kGallopRatio) {
    return GallopingOverlap(a, na, b, nb);
  }
  return LinearOverlap(a, na, b, nb);
}

uint32_t BitmapShiftForSpan(uint64_t span) {
  if (span == 0) return 0;
  uint32_t shift = 0;
  while (((span - 1) >> shift) >= 64) ++shift;
  return shift;
}

uint64_t TokenBitmap(const uint32_t* data, size_t n, uint32_t base,
                     uint32_t shift) {
  uint64_t bitmap = 0;
  for (size_t i = 0; i < n; ++i) {
    bitmap |= uint64_t{1} << (((data[i] - base) >> shift) & 63);
  }
  return bitmap;
}

uint64_t SortedOverlapAtLeast(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b,
                              uint64_t required) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  const size_t na = a.size(), nb = b.size();
  while (i < na && j < nb) {
    // Optimistic bound on the final overlap: matches so far plus everything
    // that could still match. Below `required` means the pair cannot pass.
    uint64_t best = count + static_cast<uint64_t>(std::min(na - i, nb - j));
    if (best < required) return 0;
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count >= required ? count : 0;
}

uint64_t SortedSuffixOverlap(const std::vector<uint32_t>& a,
                             std::size_t a_start,
                             const std::vector<uint32_t>& b,
                             std::size_t b_start) {
  uint64_t count = 0;
  size_t i = a_start, j = b_start;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

uint64_t SortedSymmetricDifference(const std::vector<uint32_t>& a,
                                   const std::vector<uint32_t>& b) {
  uint64_t overlap = SortedOverlap(a, b);
  return a.size() + b.size() - 2 * overlap;
}

bool SortedIntersects(const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace fsjoin
