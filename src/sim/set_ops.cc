#include "sim/set_ops.h"

#include <algorithm>

namespace fsjoin {

uint64_t SortedOverlap(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

uint64_t SortedOverlapAtLeast(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b,
                              uint64_t required) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  const size_t na = a.size(), nb = b.size();
  while (i < na && j < nb) {
    // Optimistic bound on the final overlap: matches so far plus everything
    // that could still match. Below `required` means the pair cannot pass.
    uint64_t best = count + static_cast<uint64_t>(std::min(na - i, nb - j));
    if (best < required) return 0;
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count >= required ? count : 0;
}

uint64_t SortedSuffixOverlap(const std::vector<uint32_t>& a,
                             std::size_t a_start,
                             const std::vector<uint32_t>& b,
                             std::size_t b_start) {
  uint64_t count = 0;
  size_t i = a_start, j = b_start;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

uint64_t SortedSymmetricDifference(const std::vector<uint32_t>& a,
                                   const std::vector<uint32_t>& b) {
  uint64_t overlap = SortedOverlap(a, b);
  return a.size() + b.size() - 2 * overlap;
}

bool SortedIntersects(const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace fsjoin
