#ifndef FSJOIN_SIM_SIMILARITY_H_
#define FSJOIN_SIM_SIMILARITY_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace fsjoin {

/// Set similarity functions supported by every join in the library
/// (paper §V-B gives the verification identities for all three).
enum class SimilarityFunction {
  kJaccard,  ///< |s ∩ t| / |s ∪ t|
  kDice,     ///< 2|s ∩ t| / (|s| + |t|)
  kCosine,   ///< |s ∩ t| / sqrt(|s| · |t|)
};

const char* SimilarityFunctionName(SimilarityFunction fn);
Result<SimilarityFunction> SimilarityFunctionFromName(const std::string& name);

/// Exact similarity score from the overlap c = |s ∩ t| and the set sizes.
double ComputeSimilarity(SimilarityFunction fn, uint64_t overlap,
                         uint64_t size_a, uint64_t size_b);

/// Whether a pair with overlap c and sizes (a, b) satisfies sim >= theta.
/// Evaluated with a tolerance so that FS-Join's count-aggregation path and
/// the serial verifiers agree bit-for-bit.
bool PassesThreshold(SimilarityFunction fn, uint64_t overlap, uint64_t size_a,
                     uint64_t size_b, double theta);

/// Minimum overlap two sets of sizes (a, b) need for sim >= theta
/// (the paper's alpha; e.g. Jaccard: ceil(theta/(1+theta) * (a+b))).
uint64_t MinOverlap(SimilarityFunction fn, double theta, uint64_t size_a,
                    uint64_t size_b);

/// Minimum overlap a set of size `a` needs with *any* partner for
/// sim >= theta (used for prefix lengths when the partner is unknown).
/// Jaccard: ceil(theta*a); Dice: ceil(theta*a/(2-theta));
/// Cosine: ceil(theta^2*a).
uint64_t MinOverlapSelf(SimilarityFunction fn, double theta, uint64_t size_a);

/// Smallest partner size that can reach sim >= theta with a set of size
/// `a` (the length filter's lower bound; Lemma 1 for Jaccard).
uint64_t PartnerSizeLowerBound(SimilarityFunction fn, double theta,
                               uint64_t size_a);

/// Largest partner size that can reach sim >= theta with a set of size `a`.
uint64_t PartnerSizeUpperBound(SimilarityFunction fn, double theta,
                               uint64_t size_a);

/// Prefix length for prefix filtering: the first PrefixLength tokens of a
/// (globally ordered) set of size `a` must contain a common token with any
/// theta-similar partner.
uint64_t PrefixLength(SimilarityFunction fn, double theta, uint64_t size_a);

}  // namespace fsjoin

#endif  // FSJOIN_SIM_SIMILARITY_H_
