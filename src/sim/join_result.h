#ifndef FSJOIN_SIM_JOIN_RESULT_H_
#define FSJOIN_SIM_JOIN_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/record.h"

namespace fsjoin {

/// One join answer: a record pair (normalized a < b) with its similarity.
struct SimilarPair {
  RecordId a = 0;
  RecordId b = 0;
  double similarity = 0.0;

  bool operator==(const SimilarPair& other) const {
    return a == other.a && b == other.b;
  }
};

using JoinResultSet = std::vector<SimilarPair>;

/// Sorts by (a, b) and drops duplicate pairs; all joins normalize their
/// output through this so result sets compare structurally.
void NormalizeResult(JoinResultSet* result);

/// True iff both (normalized) results contain exactly the same pairs.
bool SamePairs(const JoinResultSet& x, const JoinResultSet& y);

/// Pairs present in `expected` but not `actual` / vice versa, for test
/// diagnostics. Inputs must be normalized.
std::string DiffResults(const JoinResultSet& expected,
                        const JoinResultSet& actual, size_t max_items = 10);

}  // namespace fsjoin

#endif  // FSJOIN_SIM_JOIN_RESULT_H_
