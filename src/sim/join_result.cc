#include "sim/join_result.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace fsjoin {

void NormalizeResult(JoinResultSet* result) {
  for (SimilarPair& p : *result) {
    if (p.a > p.b) std::swap(p.a, p.b);
  }
  std::sort(result->begin(), result->end(),
            [](const SimilarPair& x, const SimilarPair& y) {
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  result->erase(std::unique(result->begin(), result->end()), result->end());
}

bool SamePairs(const JoinResultSet& x, const JoinResultSet& y) {
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (!(x[i] == y[i])) return false;
  }
  return true;
}

std::string DiffResults(const JoinResultSet& expected,
                        const JoinResultSet& actual, size_t max_items) {
  std::ostringstream os;
  size_t missing = 0, extra = 0;
  size_t i = 0, j = 0;
  auto less = [](const SimilarPair& x, const SimilarPair& y) {
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  };
  while (i < expected.size() || j < actual.size()) {
    if (j >= actual.size() ||
        (i < expected.size() && less(expected[i], actual[j]))) {
      if (missing < max_items) {
        os << StrFormat("  missing (%u,%u) sim=%.4f\n", expected[i].a,
                        expected[i].b, expected[i].similarity);
      }
      ++missing;
      ++i;
    } else if (i >= expected.size() || less(actual[j], expected[i])) {
      if (extra < max_items) {
        os << StrFormat("  extra   (%u,%u) sim=%.4f\n", actual[j].a,
                        actual[j].b, actual[j].similarity);
      }
      ++extra;
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  os << StrFormat("  total: %zu missing, %zu extra", missing, extra);
  return os.str();
}

}  // namespace fsjoin
