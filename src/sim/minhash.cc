#include "sim/minhash.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "sim/set_ops.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace fsjoin {

Status MinHashJoinConfig::Validate() const {
  if (theta <= 0.0 || theta > 1.0) {
    return Status::InvalidArgument(
        StrFormat("theta must be in (0, 1], got %f", theta));
  }
  if (num_hashes == 0 || bands == 0) {
    return Status::InvalidArgument("num_hashes and bands must be positive");
  }
  if (num_hashes % bands != 0) {
    return Status::InvalidArgument(
        StrFormat("bands (%u) must divide num_hashes (%u)", bands,
                  num_hashes));
  }
  return Status::OK();
}

double MinHashJoinConfig::CandidateProbability(double similarity) const {
  const double r = static_cast<double>(num_hashes / bands);
  return 1.0 - std::pow(1.0 - std::pow(similarity, r),
                        static_cast<double>(bands));
}

std::vector<uint64_t> MinHashSignature(const std::vector<TokenRank>& tokens,
                                       uint32_t num_hashes, uint64_t seed) {
  std::vector<uint64_t> signature(num_hashes,
                                  std::numeric_limits<uint64_t>::max());
  for (TokenRank token : tokens) {
    for (uint32_t h = 0; h < num_hashes; ++h) {
      // One cheap independent-ish hash per function: mix the token with a
      // per-function salt derived from the seed.
      uint64_t v = Mix64(static_cast<uint64_t>(token) +
                         Mix64(seed + 0x9e3779b97f4a7c15ULL * (h + 1)));
      signature[h] = std::min(signature[h], v);
    }
  }
  return signature;
}

double EstimateJaccard(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

Result<JoinResultSet> MinHashJoin(const std::vector<OrderedRecord>& records,
                                  const MinHashJoinConfig& config,
                                  MinHashJoinStats* stats) {
  FSJOIN_RETURN_NOT_OK(config.Validate());
  const uint32_t rows = config.num_hashes / config.bands;

  std::vector<std::vector<uint64_t>> signatures;
  signatures.reserve(records.size());
  for (const OrderedRecord& rec : records) {
    signatures.push_back(
        MinHashSignature(rec.tokens, config.num_hashes, config.seed));
  }

  // Band buckets -> candidate pairs (deduplicated across bands).
  std::unordered_set<std::pair<uint32_t, uint32_t>, RidPairHash> candidates;
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  for (uint32_t band = 0; band < config.bands; ++band) {
    buckets.clear();
    for (uint32_t i = 0; i < records.size(); ++i) {
      if (records[i].tokens.empty()) continue;
      uint64_t key = Mix64(band + 1);
      for (uint32_t r = 0; r < rows; ++r) {
        key = HashCombine(key, signatures[i][band * rows + r]);
      }
      buckets[key].push_back(i);
    }
    for (const auto& [key, members] : buckets) {
      for (size_t x = 0; x < members.size(); ++x) {
        for (size_t y = x + 1; y < members.size(); ++y) {
          uint32_t a = std::min(members[x], members[y]);
          uint32_t b = std::max(members[x], members[y]);
          candidates.insert({a, b});
        }
      }
    }
  }

  JoinResultSet results;
  uint64_t verified = 0;
  for (const auto& [ia, ib] : candidates) {
    const OrderedRecord& a = records[ia];
    const OrderedRecord& b = records[ib];
    const uint64_t required = MinOverlap(SimilarityFunction::kJaccard,
                                         config.theta, a.Size(), b.Size());
    const uint64_t c = SortedOverlapAtLeast(a.tokens, b.tokens, required);
    if (c == 0) continue;
    if (!PassesThreshold(SimilarityFunction::kJaccard, c, a.Size(), b.Size(),
                         config.theta)) {
      continue;
    }
    ++verified;
    results.push_back(SimilarPair{
        a.id, b.id,
        ComputeSimilarity(SimilarityFunction::kJaccard, c, a.Size(),
                          b.Size())});
  }
  if (stats != nullptr) {
    stats->candidate_pairs = candidates.size();
    stats->verified_pairs = verified;
  }
  NormalizeResult(&results);
  return results;
}

}  // namespace fsjoin
