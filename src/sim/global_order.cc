#include "sim/global_order.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace fsjoin {

GlobalOrder GlobalOrder::FromFrequencies(std::vector<uint64_t> frequency) {
  GlobalOrder order;
  order.frequency_ = std::move(frequency);
  const size_t n = order.frequency_.size();
  order.token_at_rank_.resize(n);
  std::iota(order.token_at_rank_.begin(), order.token_at_rank_.end(), 0);
  std::sort(order.token_at_rank_.begin(), order.token_at_rank_.end(),
            [&](TokenId a, TokenId b) {
              if (order.frequency_[a] != order.frequency_[b]) {
                return order.frequency_[a] < order.frequency_[b];
              }
              return a < b;
            });
  order.rank_of_token_.resize(n);
  for (size_t r = 0; r < n; ++r) {
    order.rank_of_token_[order.token_at_rank_[r]] = static_cast<TokenRank>(r);
  }
  order.total_frequency_ = 0;
  for (uint64_t f : order.frequency_) order.total_frequency_ += f;
  return order;
}

GlobalOrder GlobalOrder::FromCorpus(const Corpus& corpus) {
  std::vector<uint64_t> freq(corpus.dictionary.size());
  for (size_t t = 0; t < freq.size(); ++t) {
    freq[t] = corpus.dictionary.Frequency(static_cast<TokenId>(t));
  }
  return FromFrequencies(std::move(freq));
}

std::vector<OrderedRecord> ApplyGlobalOrder(const Corpus& corpus,
                                            const GlobalOrder& order) {
  std::vector<OrderedRecord> out;
  out.reserve(corpus.records.size());
  for (const Record& rec : corpus.records) {
    OrderedRecord ordered;
    ordered.id = rec.id;
    ordered.tokens.reserve(rec.tokens.size());
    for (TokenId t : rec.tokens) {
      FSJOIN_CHECK(t < order.NumTokens());
      ordered.tokens.push_back(order.RankOf(t));
    }
    std::sort(ordered.tokens.begin(), ordered.tokens.end());
    out.push_back(std::move(ordered));
  }
  return out;
}

}  // namespace fsjoin
