#ifndef FSJOIN_SIM_SERIAL_JOIN_H_
#define FSJOIN_SIM_SERIAL_JOIN_H_

#include <cstdint>
#include <vector>

#include "sim/global_order.h"
#include "sim/join_result.h"
#include "sim/similarity.h"

namespace fsjoin {

/// Counters shared by the serial joins, reported by the benchmark harness.
struct SerialJoinStats {
  uint64_t candidates = 0;     ///< pairs reaching verification
  uint64_t verified = 0;       ///< pairs surviving verification
  uint64_t prefix_probes = 0;  ///< posting-list entries scanned
};

/// Exact O(n^2) self-join: the correctness oracle for every other join in
/// the repository. Records must have sorted token vectors.
JoinResultSet BruteForceJoin(const std::vector<OrderedRecord>& records,
                             SimilarityFunction fn, double theta);

/// Exact R-S oracle over a merged id space: records with id < rs_boundary
/// are the R side, the rest are S, and only pairs that straddle the
/// boundary are produced (so every pair has a < rs_boundary <= b). The
/// ground truth for every two-collection join in the repository.
JoinResultSet BruteForceJoinRS(const std::vector<OrderedRecord>& records,
                               RecordId rs_boundary, SimilarityFunction fn,
                               double theta);

/// Serial AllPairs (Bayardo et al.): prefix-filter index + length filter +
/// merge verification. Used as the in-memory reference join and inside the
/// RIDPairsPPJoin baseline's reducers.
JoinResultSet AllPairsJoin(const std::vector<OrderedRecord>& records,
                           SimilarityFunction fn, double theta,
                           SerialJoinStats* stats = nullptr);

/// Serial PPJoin (Xiao et al.): AllPairs plus the positional filter.
JoinResultSet PPJoin(const std::vector<OrderedRecord>& records,
                     SimilarityFunction fn, double theta,
                     SerialJoinStats* stats = nullptr);

}  // namespace fsjoin

#endif  // FSJOIN_SIM_SERIAL_JOIN_H_
