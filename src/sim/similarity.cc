#include "sim/similarity.h"

#include <cmath>

#include "util/logging.h"

namespace fsjoin {

namespace {
// Tolerance absorbing floating-point error in threshold comparisons so all
// join paths (count-aggregation and direct verification) agree.
constexpr double kEps = 1e-9;

uint64_t CeilPositive(double x) {
  if (x <= 0.0) return 0;
  return static_cast<uint64_t>(std::ceil(x - kEps));
}

uint64_t FloorPositive(double x) {
  if (x <= 0.0) return 0;
  return static_cast<uint64_t>(std::floor(x + kEps));
}
}  // namespace

const char* SimilarityFunctionName(SimilarityFunction fn) {
  switch (fn) {
    case SimilarityFunction::kJaccard:
      return "jaccard";
    case SimilarityFunction::kDice:
      return "dice";
    case SimilarityFunction::kCosine:
      return "cosine";
  }
  return "?";
}

Result<SimilarityFunction> SimilarityFunctionFromName(const std::string& name) {
  if (name == "jaccard") return SimilarityFunction::kJaccard;
  if (name == "dice") return SimilarityFunction::kDice;
  if (name == "cosine") return SimilarityFunction::kCosine;
  return Status::InvalidArgument("unknown similarity function: " + name);
}

double ComputeSimilarity(SimilarityFunction fn, uint64_t overlap,
                         uint64_t size_a, uint64_t size_b) {
  const double c = static_cast<double>(overlap);
  const double a = static_cast<double>(size_a);
  const double b = static_cast<double>(size_b);
  if (size_a == 0 || size_b == 0) return 0.0;
  switch (fn) {
    case SimilarityFunction::kJaccard:
      return c / (a + b - c);
    case SimilarityFunction::kDice:
      return 2.0 * c / (a + b);
    case SimilarityFunction::kCosine:
      return c / std::sqrt(a * b);
  }
  return 0.0;
}

bool PassesThreshold(SimilarityFunction fn, uint64_t overlap, uint64_t size_a,
                     uint64_t size_b, double theta) {
  return ComputeSimilarity(fn, overlap, size_a, size_b) >= theta - kEps;
}

uint64_t MinOverlap(SimilarityFunction fn, double theta, uint64_t size_a,
                    uint64_t size_b) {
  FSJOIN_CHECK(theta > 0.0 && theta <= 1.0);
  const double a = static_cast<double>(size_a);
  const double b = static_cast<double>(size_b);
  switch (fn) {
    case SimilarityFunction::kJaccard:
      return CeilPositive(theta / (1.0 + theta) * (a + b));
    case SimilarityFunction::kDice:
      return CeilPositive(theta * (a + b) / 2.0);
    case SimilarityFunction::kCosine:
      return CeilPositive(theta * std::sqrt(a * b));
  }
  return 0;
}

uint64_t MinOverlapSelf(SimilarityFunction fn, double theta, uint64_t size_a) {
  FSJOIN_CHECK(theta > 0.0 && theta <= 1.0);
  const double a = static_cast<double>(size_a);
  switch (fn) {
    case SimilarityFunction::kJaccard:
      // sim >= theta implies c >= theta * max(|s|,|t|) >= theta * a.
      return CeilPositive(theta * a);
    case SimilarityFunction::kDice:
      // 2c/(a+b) >= theta and b >= c imply c >= theta*a/(2-theta).
      return CeilPositive(theta * a / (2.0 - theta));
    case SimilarityFunction::kCosine:
      // c/sqrt(ab) >= theta and b >= c imply c >= theta^2 * a.
      return CeilPositive(theta * theta * a);
  }
  return 0;
}

uint64_t PartnerSizeLowerBound(SimilarityFunction fn, double theta,
                               uint64_t size_a) {
  const double a = static_cast<double>(size_a);
  switch (fn) {
    case SimilarityFunction::kJaccard:
      return CeilPositive(theta * a);
    case SimilarityFunction::kDice:
      return CeilPositive(theta * a / (2.0 - theta));
    case SimilarityFunction::kCosine:
      return CeilPositive(theta * theta * a);
  }
  return 0;
}

uint64_t PartnerSizeUpperBound(SimilarityFunction fn, double theta,
                               uint64_t size_a) {
  const double a = static_cast<double>(size_a);
  switch (fn) {
    case SimilarityFunction::kJaccard:
      return FloorPositive(a / theta);
    case SimilarityFunction::kDice:
      return FloorPositive(a * (2.0 - theta) / theta);
    case SimilarityFunction::kCosine:
      return FloorPositive(a / (theta * theta));
  }
  return 0;
}

uint64_t PrefixLength(SimilarityFunction fn, double theta, uint64_t size_a) {
  uint64_t required = MinOverlapSelf(fn, theta, size_a);
  if (required == 0) return size_a;
  if (required > size_a) return 0;  // cannot be similar to anything
  return size_a - required + 1;
}

}  // namespace fsjoin
