#ifndef FSJOIN_SIM_MINHASH_H_
#define FSJOIN_SIM_MINHASH_H_

#include <cstdint>
#include <vector>

#include "sim/global_order.h"
#include "sim/join_result.h"
#include "sim/similarity.h"
#include "util/status.h"

namespace fsjoin {

/// MinHash/LSH approximate set similarity join — the paper's stated future
/// work ("we plan to extend our methods to approximate approaches").
///
/// Each record gets `num_hashes` MinHash values (one per hash function);
/// the signature is cut into `bands` bands of `num_hashes / bands` rows.
/// Two records become a candidate pair if any band hashes identically;
/// candidates are then verified *exactly* against the token sets, so the
/// output has precision 1.0 and recall ≈ 1 − (1 − θ^r)^b at similarity θ.

/// Configuration of the LSH join.
struct MinHashJoinConfig {
  double theta = 0.8;
  /// Jaccard only (MinHash estimates Jaccard by construction).
  uint32_t num_hashes = 128;
  uint32_t bands = 32;  ///< must divide num_hashes
  uint64_t seed = 17;

  Status Validate() const;

  /// Probability a pair at exactly `similarity` becomes a candidate:
  /// 1 - (1 - s^r)^b with r = num_hashes / bands.
  double CandidateProbability(double similarity) const;
};

/// The MinHash signature of one token set.
std::vector<uint64_t> MinHashSignature(const std::vector<TokenRank>& tokens,
                                       uint32_t num_hashes, uint64_t seed);

/// Estimated Jaccard similarity from two signatures (fraction of agreeing
/// components).
double EstimateJaccard(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b);

/// Execution counters of one LSH join.
struct MinHashJoinStats {
  uint64_t candidate_pairs = 0;  ///< distinct pairs sharing >= 1 band
  uint64_t verified_pairs = 0;   ///< candidates with true sim >= theta
};

/// Runs the banded LSH self-join over ordered records. Every returned pair
/// truly satisfies Jaccard >= theta (exact verification); pairs whose
/// signature never collides are missed with the probability above.
Result<JoinResultSet> MinHashJoin(const std::vector<OrderedRecord>& records,
                                  const MinHashJoinConfig& config,
                                  MinHashJoinStats* stats = nullptr);

}  // namespace fsjoin

#endif  // FSJOIN_SIM_MINHASH_H_
