#include "sim/serial_join.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "sim/set_ops.h"

namespace fsjoin {

JoinResultSet BruteForceJoin(const std::vector<OrderedRecord>& records,
                             SimilarityFunction fn, double theta) {
  JoinResultSet result;
  for (size_t i = 0; i < records.size(); ++i) {
    for (size_t j = i + 1; j < records.size(); ++j) {
      uint64_t c = SortedOverlap(records[i].tokens, records[j].tokens);
      if (c == 0) continue;
      if (PassesThreshold(fn, c, records[i].Size(), records[j].Size(),
                          theta)) {
        result.push_back(SimilarPair{
            records[i].id, records[j].id,
            ComputeSimilarity(fn, c, records[i].Size(), records[j].Size())});
      }
    }
  }
  NormalizeResult(&result);
  return result;
}

JoinResultSet BruteForceJoinRS(const std::vector<OrderedRecord>& records,
                               RecordId rs_boundary, SimilarityFunction fn,
                               double theta) {
  JoinResultSet result;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].id >= rs_boundary) continue;  // probe side only
    for (size_t j = 0; j < records.size(); ++j) {
      if (records[j].id < rs_boundary) continue;  // build side only
      uint64_t c = SortedOverlap(records[i].tokens, records[j].tokens);
      if (c == 0) continue;
      if (PassesThreshold(fn, c, records[i].Size(), records[j].Size(),
                          theta)) {
        result.push_back(SimilarPair{
            records[i].id, records[j].id,
            ComputeSimilarity(fn, c, records[i].Size(), records[j].Size())});
      }
    }
  }
  NormalizeResult(&result);
  return result;
}

namespace {

struct Posting {
  uint32_t rec = 0;  ///< index into the size-sorted record order
  uint32_t pos = 0;  ///< token position within that record's prefix
};

struct CandidateState {
  uint64_t count = 0;
  bool pruned = false;
};

JoinResultSet PrefixFilterJoin(const std::vector<OrderedRecord>& records,
                               SimilarityFunction fn, double theta,
                               bool positional, SerialJoinStats* stats) {
  // Process records in ascending size so each pair is probed exactly once,
  // with the longer record as the probe.
  std::vector<uint32_t> order(records.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (records[a].Size() != records[b].Size()) {
      return records[a].Size() < records[b].Size();
    }
    return records[a].id < records[b].id;
  });

  std::unordered_map<TokenRank, std::vector<Posting>> index;
  std::unordered_map<uint32_t, CandidateState> candidates;
  JoinResultSet result;

  for (uint32_t xi = 0; xi < order.size(); ++xi) {
    const OrderedRecord& x = records[order[xi]];
    if (x.Size() == 0) continue;
    const uint64_t prefix_len = PrefixLength(fn, theta, x.Size());
    const uint64_t min_partner = PartnerSizeLowerBound(fn, theta, x.Size());

    candidates.clear();
    for (uint64_t p = 0; p < prefix_len; ++p) {
      auto it = index.find(x.tokens[p]);
      if (it == index.end()) continue;
      for (const Posting& posting : it->second) {
        const OrderedRecord& y = records[order[posting.rec]];
        if (y.Size() < min_partner) continue;
        if (stats != nullptr) ++stats->prefix_probes;
        CandidateState& st = candidates[posting.rec];
        if (st.pruned) continue;
        ++st.count;
        if (positional) {
          // Positional filter (PPJoin): tokens before position p in x and
          // before posting.pos in y cannot contribute beyond the matches
          // already counted.
          uint64_t ubound =
              st.count + std::min<uint64_t>(x.Size() - p - 1,
                                            y.Size() - posting.pos - 1);
          if (ubound < MinOverlap(fn, theta, x.Size(), y.Size())) {
            st.pruned = true;
          }
        }
      }
    }

    for (const auto& [yi, st] : candidates) {
      if (st.pruned || st.count == 0) continue;
      const OrderedRecord& y = records[order[yi]];
      if (stats != nullptr) ++stats->candidates;
      uint64_t required = MinOverlap(fn, theta, x.Size(), y.Size());
      uint64_t c = SortedOverlapAtLeast(x.tokens, y.tokens, required);
      if (c == 0) continue;
      if (!PassesThreshold(fn, c, x.Size(), y.Size(), theta)) continue;
      if (stats != nullptr) ++stats->verified;
      result.push_back(SimilarPair{
          x.id, y.id, ComputeSimilarity(fn, c, x.Size(), y.Size())});
    }

    for (uint64_t p = 0; p < prefix_len; ++p) {
      index[x.tokens[p]].push_back(
          Posting{xi, static_cast<uint32_t>(p)});
    }
  }

  NormalizeResult(&result);
  return result;
}

}  // namespace

JoinResultSet AllPairsJoin(const std::vector<OrderedRecord>& records,
                           SimilarityFunction fn, double theta,
                           SerialJoinStats* stats) {
  return PrefixFilterJoin(records, fn, theta, /*positional=*/false, stats);
}

JoinResultSet PPJoin(const std::vector<OrderedRecord>& records,
                     SimilarityFunction fn, double theta,
                     SerialJoinStats* stats) {
  return PrefixFilterJoin(records, fn, theta, /*positional=*/true, stats);
}

}  // namespace fsjoin
