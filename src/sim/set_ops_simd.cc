#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "sim/set_ops.h"
#include "util/simd.h"

#if !defined(FSJOIN_NO_SIMD) && defined(__x86_64__)
#include <immintrin.h>
#define FSJOIN_HAVE_AVX2_KERNELS 1
#endif
#if !defined(FSJOIN_NO_SIMD) && defined(__ARM_NEON)
#include <arm_neon.h>
#define FSJOIN_HAVE_NEON_KERNELS 1
#endif

namespace fsjoin {

namespace {

/// The vector kernels below all rely on the set_ops input invariant (sorted,
/// duplicate-free): because every value appears at most once per side, an
/// equality observed between two 8-lane blocks identifies a unique element
/// pair, so matches can be counted per comparison without dedup bookkeeping.
/// Each (a-block, b-block) pair is visited at most once (every iteration
/// retires at least one block), and the advance-the-smaller-max rule
/// guarantees two blocks holding an equal pair are current simultaneously at
/// some iteration, so no match is missed either.

#if defined(FSJOIN_HAVE_AVX2_KERNELS)

/// GallopLowerBound with the final bracket resolved by 8-lane compares
/// instead of a binary search: once the bracket is narrow the branch-free
/// count-of-smaller-elements wins over the mispredicting bisection.
__attribute__((target("avx2"))) std::size_t Avx2GallopLowerBound(
    const uint32_t* data, std::size_t n, std::size_t from, uint32_t x) {
  if (from >= n || data[from] >= x) return from;
  std::size_t bound = 1;
  while (from + bound < n && data[from + bound] < x) bound *= 2;
  std::size_t lo = from + bound / 2 + 1;
  std::size_t hi = std::min(from + bound, n);
  while (hi - lo > 16) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (data[mid] < x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // cmpgt is signed; XOR both sides with the sign bit to compare unsigned.
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i needle =
      _mm256_set1_epi32(static_cast<int>(x ^ 0x80000000u));
  while (lo + 8 <= hi) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + lo)),
        bias);
    const int lt = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(needle, v)));
    // Sorted input makes the less-than mask a low-bit prefix; its popcount
    // is the offset of the first element >= x.
    if (lt != 0xFF) {
      return lo + static_cast<std::size_t>(
                      __builtin_popcount(static_cast<unsigned>(lt)));
    }
    lo += 8;
  }
  while (lo < hi && data[lo] < x) ++lo;
  return lo;
}

/// Skewed pairs: walk the small side, locate each element in the large one
/// with the vector-assisted gallop. `required` = 0 disables the early exit.
__attribute__((target("avx2"))) uint64_t Avx2GallopOverlap(
    const uint32_t* a, std::size_t na, const uint32_t* b, std::size_t nb,
    uint64_t required) {
  const uint32_t* small = na <= nb ? a : b;
  const std::size_t ns = na <= nb ? na : nb;
  const uint32_t* large = na <= nb ? b : a;
  const std::size_t nl = na <= nb ? nb : na;
  uint64_t count = 0;
  std::size_t j = 0;
  for (std::size_t i = 0; i < ns; ++i) {
    if (count + (ns - i) < required) return count;
    const uint32_t x = small[i];
    j = Avx2GallopLowerBound(large, nl, j, x);
    if (j == nl) break;
    if (large[j] == x) {
      ++count;
      ++j;
    }
  }
  return count;
}

/// Similar-length pairs: compare 8-lane blocks of a against all 8 rotations
/// of the current b block, then retire whichever block has the smaller max.
/// `required` = 0 disables the early exit; otherwise the loop stops once
/// matches-so-far plus the optimistic remainder cannot reach it (the
/// bounded-overlap contract in set_ops.h).
__attribute__((target("avx2"))) uint64_t Avx2BlockMerge(const uint32_t* a,
                                                        std::size_t na,
                                                        const uint32_t* b,
                                                        std::size_t nb,
                                                        uint64_t required) {
  const __m256i rot = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    if (count + std::min(na - i, nb - j) < required) return count;
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    for (int k = 1; k < 8; ++k) {
      vb = _mm256_permutevar8x32_epi32(vb, rot);
      eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, vb));
    }
    count += static_cast<uint64_t>(__builtin_popcount(static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(eq)))));
    const uint32_t a_max = a[i + 7];
    const uint32_t b_max = b[j + 7];
    if (a_max <= b_max) i += 8;
    if (b_max <= a_max) j += 8;
  }
  // Scalar merge over the leftover suffixes. Matches already counted paired
  // a[i..) or b[j..) elements with values before the other suffix, so
  // (duplicate-free inputs) the tail cannot recount them.
  if (required == 0) {
    return count + LinearOverlap(a + i, na - i, b + j, nb - j);
  }
  return count + SortedOverlapBounded(a + i, na - i, b + j, nb - j,
                                      required > count ? required - count : 0);
}

uint64_t Avx2Overlap(const uint32_t* a, std::size_t na, const uint32_t* b,
                     std::size_t nb, uint64_t required) {
  const std::size_t small = std::min(na, nb);
  const std::size_t large = std::max(na, nb);
  if (small > 0 && large / small >= kGallopRatio) {
    return Avx2GallopOverlap(a, na, b, nb, required);
  }
  return Avx2BlockMerge(a, na, b, nb, required);
}

#endif  // FSJOIN_HAVE_AVX2_KERNELS

#if defined(FSJOIN_HAVE_NEON_KERNELS)

/// NEON analogue of the AVX2 block merge: 4-lane blocks, rotations via ext.
uint64_t NeonBlockMerge(const uint32_t* a, std::size_t na, const uint32_t* b,
                        std::size_t nb, uint64_t required) {
  uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    if (count + std::min(na - i, nb - j) < required) return count;
    const uint32x4_t va = vld1q_u32(a + i);
    uint32x4_t vb = vld1q_u32(b + j);
    uint32x4_t eq = vceqq_u32(va, vb);
    vb = vextq_u32(vb, vb, 1);
    eq = vorrq_u32(eq, vceqq_u32(va, vb));
    vb = vextq_u32(vb, vb, 1);
    eq = vorrq_u32(eq, vceqq_u32(va, vb));
    vb = vextq_u32(vb, vb, 1);
    eq = vorrq_u32(eq, vceqq_u32(va, vb));
    // Matched lanes are all-ones; summing lane >> 31 counts them.
    count += vaddvq_u32(vshrq_n_u32(eq, 31));
    const uint32_t a_max = a[i + 3];
    const uint32_t b_max = b[j + 3];
    if (a_max <= b_max) i += 4;
    if (b_max <= a_max) j += 4;
  }
  if (required == 0) {
    return count + LinearOverlap(a + i, na - i, b + j, nb - j);
  }
  return count + SortedOverlapBounded(a + i, na - i, b + j, nb - j,
                                      required > count ? required - count : 0);
}

uint64_t NeonOverlap(const uint32_t* a, std::size_t na, const uint32_t* b,
                     std::size_t nb, uint64_t required) {
  const std::size_t small = std::min(na, nb);
  const std::size_t large = std::max(na, nb);
  if (small > 0 && large / small >= kGallopRatio) {
    // Skew is gallop-bound, not lane-bound; the scalar probe is already
    // O(|small| log |large|) and NEON has no cheap movemask to beat it.
    return required == 0 ? GallopingOverlap(a, na, b, nb)
                         : SortedOverlapBounded(a, na, b, nb, required);
  }
  return NeonBlockMerge(a, na, b, nb, required);
}

#endif  // FSJOIN_HAVE_NEON_KERNELS

}  // namespace

uint64_t SimdOverlap(const uint32_t* a, std::size_t na, const uint32_t* b,
                     std::size_t nb) {
  switch (DetectedSimdIsa()) {
#if defined(FSJOIN_HAVE_AVX2_KERNELS)
    case SimdIsa::kAvx2:
      return Avx2Overlap(a, na, b, nb, /*required=*/0);
#endif
#if defined(FSJOIN_HAVE_NEON_KERNELS)
    case SimdIsa::kNeon:
      return NeonOverlap(a, na, b, nb, /*required=*/0);
#endif
    default:
      return SortedOverlap(a, na, b, nb);
  }
}

uint64_t SimdOverlapBounded(const uint32_t* a, std::size_t na,
                            const uint32_t* b, std::size_t nb,
                            uint64_t required) {
  switch (DetectedSimdIsa()) {
#if defined(FSJOIN_HAVE_AVX2_KERNELS)
    case SimdIsa::kAvx2:
      return Avx2Overlap(a, na, b, nb, required);
#endif
#if defined(FSJOIN_HAVE_NEON_KERNELS)
    case SimdIsa::kNeon:
      return NeonOverlap(a, na, b, nb, required);
#endif
    default:
      return SortedOverlapBounded(a, na, b, nb, required);
  }
}

}  // namespace fsjoin
