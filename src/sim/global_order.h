#ifndef FSJOIN_SIM_GLOBAL_ORDER_H_
#define FSJOIN_SIM_GLOBAL_ORDER_H_

#include <cstdint>
#include <vector>

#include "text/corpus.h"
#include "util/status.h"

namespace fsjoin {

/// A token rank in the global ordering: rank 0 is the *rarest* token (the
/// paper sorts by ascending term frequency so prefixes hold rare tokens).
using TokenRank = uint32_t;

/// The paper's global ordering O (Definition 3): a total order over the
/// token domain by ascending term frequency, ties broken by TokenId for
/// determinism.
class GlobalOrder {
 public:
  GlobalOrder() = default;

  /// Builds the ordering from explicit (token, frequency) pairs — the output
  /// of the MapReduce ordering job. `frequency[t]` is the term frequency of
  /// TokenId t; tokens never seen get frequency 0 and still receive ranks.
  static GlobalOrder FromFrequencies(std::vector<uint64_t> frequency);

  /// Convenience: builds directly from a corpus dictionary (serial path).
  static GlobalOrder FromCorpus(const Corpus& corpus);

  /// Rank of a token. Requires id < NumTokens().
  TokenRank RankOf(TokenId id) const { return rank_of_token_[id]; }

  /// Token holding a given rank.
  TokenId TokenAt(TokenRank rank) const { return token_at_rank_[rank]; }

  /// Term frequency of the token at `rank` (ascending in rank).
  uint64_t FrequencyAt(TokenRank rank) const {
    return frequency_[token_at_rank_[rank]];
  }

  size_t NumTokens() const { return token_at_rank_.size(); }

  /// Total term frequency over the whole domain (sum over tokens).
  uint64_t TotalFrequency() const { return total_frequency_; }

 private:
  std::vector<TokenRank> rank_of_token_;
  std::vector<TokenId> token_at_rank_;
  std::vector<uint64_t> frequency_;
  uint64_t total_frequency_ = 0;
};

/// A record re-expressed in rank space: tokens replaced by their global
/// ranks and sorted ascending (rarest first), which is the representation
/// every filter-and-verification join operates on.
struct OrderedRecord {
  RecordId id = 0;
  std::vector<TokenRank> tokens;

  size_t Size() const { return tokens.size(); }
};

/// Applies the global ordering to every record of a corpus.
std::vector<OrderedRecord> ApplyGlobalOrder(const Corpus& corpus,
                                            const GlobalOrder& order);

}  // namespace fsjoin

#endif  // FSJOIN_SIM_GLOBAL_ORDER_H_
