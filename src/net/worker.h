#ifndef FSJOIN_NET_WORKER_H_
#define FSJOIN_NET_WORKER_H_

#include <string>

#include "util/status.h"

namespace fsjoin::net {

/// How this worker meets its coordinator.
struct WorkerServeOptions {
  /// Non-empty: dial the coordinator at "host:port" (spawn-local mode —
  /// the coordinator listens and passes its address on our command line).
  std::string connect;
  /// Non-empty: listen at "host:port" and wait for the coordinator to dial
  /// in (standalone fsjoin_worker mode). Exactly one of connect/listen
  /// must be set.
  std::string listen;
  /// Connect/handshake timeout.
  int timeout_ms = 10000;
};

/// Runs one cluster worker to completion: opens a shuffle server, attaches
/// to the coordinator (kHello/kHelloAck handshake), then serves the control
/// loop — heartbeats answered while a dispatched task executes on a second
/// thread, retained map partitions served to peers over the shuffle port —
/// until kShutdown or the coordinator's connection closes. See the protocol
/// walk-through in DESIGN.md §5j.
///
/// Fault injection: when the FSJOIN_WORKER_FAULT environment variable holds
/// "job:kind:index:attempt" and a dispatched task matches all four fields,
/// the worker _exit(3)s mid-task — the deterministic kill-a-worker lever of
/// the cluster fault tests.
Status ServeWorker(const WorkerServeOptions& options);

/// Binary entry hook for spawn-local workers, the socket sibling of
/// mr::WorkerTaskMainIfRequested. Call first thing in main(); when argv
/// contains `--worker-serve <host:port>` the process becomes a cluster
/// worker dialing that coordinator and the return value is its exit code.
/// Otherwise returns -1 — and records that this binary supports worker
/// serve mode, which is what lets ClusterTaskRunner spawn local workers by
/// re-execing itself.
int WorkerServeMainIfRequested(int argc, char** argv);

/// Whether this binary routed main() through WorkerServeMainIfRequested
/// (and may therefore be re-execed with --worker-serve).
bool WorkerServeAvailable();
void SetWorkerServeAvailable(bool available);

}  // namespace fsjoin::net

#endif  // FSJOIN_NET_WORKER_H_
