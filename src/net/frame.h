#ifndef FSJOIN_NET_FRAME_H_
#define FSJOIN_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "net/socket.h"
#include "util/status.h"

namespace fsjoin::net {

/// The cluster RPC wire format: length-prefixed, CRC32C-framed messages,
/// the socket sibling of the PR 4 run-file block framing. Every frame is
///
///   magic  fixed32-BE   0x4653'4A4E ("FSJN") — desync/garbage detector
///   type   fixed32-BE   MsgType
///   len    fixed32-BE   payload byte count
///   hcrc   fixed32-BE   crc32c over the 12 magic/type/len bytes
///   pcrc   fixed32-BE   crc32c over the payload
///   payload[len]
///
/// The header carries its own CRC so a corrupted length can never send the
/// reader off into the stream (the run-file footer plays the same role on
/// disk); the payload CRC makes every bit flip in transit a detected
/// Corruption instead of a silently wrong task result. Payload contents
/// use the util/serde.h varint codec, exactly like TaskSpec.
enum class MsgType : uint32_t {
  // Control channel (coordinator <-> worker).
  kHello = 1,         ///< worker -> coordinator: version, pid, shuffle port
  kHelloAck = 2,      ///< coordinator -> worker: accepted, worker id
  kHeartbeat = 3,     ///< coordinator -> worker: liveness probe
  kHeartbeatAck = 4,  ///< worker -> coordinator: probe answer
  kDispatchTask = 5,  ///< coordinator -> worker: TaskSpec + stream count
  kTaskData = 6,      ///< a chunk of one streamed input run
  kTaskDataEnd = 7,   ///< end of one input run: records/bytes/chunks trailer
  kTaskResult = 8,    ///< worker -> coordinator: encoded TaskOutput
  kTaskError = 9,     ///< worker -> coordinator: task's terminal Status
  kShutdown = 10,     ///< coordinator -> worker: exit cleanly
  // Shuffle channel (worker <-> worker, also served to the coordinator).
  kShuffleFetch = 11,    ///< fetch one retained (job, map task, partition)
  kShuffleChunk = 12,    ///< a chunk of the fetched sorted partition
  kShuffleEnd = 13,      ///< end of fetch: records/bytes/chunks trailer
  kShuffleRelease = 14,  ///< coordinator -> worker: drop a job's partitions
};

const char* MsgTypeName(MsgType type);

inline constexpr uint32_t kFrameMagic = 0x46534A4Eu;  // "FSJN"
inline constexpr size_t kFrameHeaderBytes = 20;
/// Frames above this are rejected before allocation: no legitimate message
/// (a task result is the largest) approaches it, and a corrupted length
/// must not become a 4 GiB allocation.
inline constexpr uint32_t kMaxFramePayload = 1u << 30;

struct Frame {
  MsgType type = MsgType::kHello;
  std::string payload;
};

/// Appends one encoded frame to `dst`.
void EncodeFrame(MsgType type, std::string_view payload, std::string* dst);

/// Decodes one frame from the start of `data` (pure function — the
/// fault-injection tests run the whole corruption battery without a
/// socket). On success sets *frame and *consumed. Incomplete input is
/// IoError("frame truncated..."); any CRC/magic/type violation is
/// Corruption.
Status DecodeFrame(std::string_view data, Frame* frame, size_t* consumed);

/// Sends one frame over `socket`.
Status SendFrame(Socket* socket, MsgType type, std::string_view payload);

/// Reads exactly one frame, validating magic, header CRC, size bound and
/// payload CRC.
Status RecvFrame(Socket* socket, Frame* frame);

// ---- Message payloads ----------------------------------------------------

inline constexpr uint32_t kProtocolVersion = 1;

/// Worker's registration, sent first on every control connection.
struct HelloMsg {
  uint32_t protocol_version = kProtocolVersion;
  uint64_t pid = 0;
  /// Port of the worker's shuffle server, on the same host the coordinator
  /// reached the worker at; peers dial it to pull retained map output.
  uint32_t shuffle_port = 0;

  void EncodeTo(std::string* dst) const;
  static Result<HelloMsg> Decode(std::string_view data);
};

struct HelloAckMsg {
  uint32_t worker_id = 0;

  void EncodeTo(std::string* dst) const;
  static Result<HelloAckMsg> Decode(std::string_view data);
};

/// End-of-stream trailer for kTaskDataEnd / kShuffleEnd: the receiver
/// cross-checks its running counts against it, so a stream that lost a
/// whole frame (not just flipped bits) is detected too — the socket
/// analogue of the run-file footer.
struct StreamTrailer {
  uint64_t records = 0;
  uint64_t payload_bytes = 0;
  uint32_t chunks = 0;

  void EncodeTo(std::string* dst) const;
  static Result<StreamTrailer> Decode(std::string_view data);
};

/// Terminal task failure. `lost_endpoint` is set when the failure was a
/// dead shuffle source — the coordinator uses it to mark the holder dead
/// and re-run its map tasks before retrying the reduce.
struct TaskErrorMsg {
  Status error = Status::OK();
  std::string lost_endpoint;

  void EncodeTo(std::string* dst) const;
  static Result<TaskErrorMsg> Decode(std::string_view data);
};

/// Shuffle-fetch request: one retained (job, map task) partition.
struct ShuffleFetchMsg {
  std::string job;
  uint32_t map_task = 0;
  uint32_t partition = 0;

  void EncodeTo(std::string* dst) const;
  static Result<ShuffleFetchMsg> Decode(std::string_view data);
};

// ---- Record chunks -------------------------------------------------------

/// Records inside kTaskData/kShuffleChunk frames use the run-file block
/// payload layout: (key_len varint, val_len varint, key, value)*. The
/// frame's payload CRC plays the block CRC's role.
void AppendChunkRecord(std::string* chunk, std::string_view key,
                       std::string_view value);

/// Soft chunk-size target, matching store::kDefaultRunBlockBytes.
inline constexpr size_t kChunkTargetBytes = 256 * 1024;

}  // namespace fsjoin::net

#endif  // FSJOIN_NET_FRAME_H_
