#include "net/stream.h"

#include "util/serde.h"

namespace fsjoin::net {

Status ChunkStreamWriter::Add(std::string_view key, std::string_view value) {
  AppendChunkRecord(&chunk_, key, value);
  records_ += 1;
  payload_bytes_ += key.size() + value.size();
  if (chunk_.size() >= kChunkTargetBytes) {
    return FlushChunk();
  }
  return Status::OK();
}

Status ChunkStreamWriter::FlushChunk() {
  if (chunk_.empty()) return Status::OK();
  FSJOIN_RETURN_NOT_OK(SendFrame(socket_, chunk_type_, chunk_));
  chunk_.clear();
  chunks_ += 1;
  return Status::OK();
}

Status ChunkStreamWriter::Finish() {
  FSJOIN_RETURN_NOT_OK(FlushChunk());
  StreamTrailer trailer;
  trailer.records = records_;
  trailer.payload_bytes = payload_bytes_;
  trailer.chunks = chunks_;
  std::string payload;
  trailer.EncodeTo(&payload);
  return SendFrame(socket_, end_type_, payload);
}

Status FrameRecordStream::FetchChunk() {
  Frame frame;
  FSJOIN_RETURN_NOT_OK(RecvFrame(socket_, &frame));
  if (frame.type == chunk_type_) {
    if (frame.payload.empty()) {
      return Status::Corruption("record stream: empty chunk frame");
    }
    chunk_ = std::move(frame.payload);
    pos_ = 0;
    chunks_ += 1;
    return Status::OK();
  }
  if (frame.type == end_type_) {
    FSJOIN_ASSIGN_OR_RETURN(StreamTrailer trailer,
                            StreamTrailer::Decode(frame.payload));
    if (trailer.records != records_ ||
        trailer.payload_bytes != payload_bytes_ ||
        trailer.chunks != chunks_) {
      return Status::Corruption(
          "record stream: trailer mismatch (got " +
          std::to_string(records_) + " records / " +
          std::to_string(payload_bytes_) + " bytes / " +
          std::to_string(chunks_) + " chunks, trailer says " +
          std::to_string(trailer.records) + " / " +
          std::to_string(trailer.payload_bytes) + " / " +
          std::to_string(trailer.chunks) + ")");
    }
    done_ = true;
    chunk_.clear();
    pos_ = 0;
    return Status::OK();
  }
  if (frame.type == MsgType::kTaskError) {
    FSJOIN_ASSIGN_OR_RETURN(TaskErrorMsg msg,
                            TaskErrorMsg::Decode(frame.payload));
    return msg.error;
  }
  return Status::Corruption(std::string("record stream: unexpected ") +
                            MsgTypeName(frame.type) + " frame");
}

Status FrameRecordStream::Next(bool* has_record, std::string_view* key,
                               std::string_view* value) {
  *has_record = false;
  while (pos_ == chunk_.size()) {
    if (done_) return Status::OK();
    FSJOIN_RETURN_NOT_OK(FetchChunk());
  }
  Decoder dec(std::string_view(chunk_).substr(pos_));
  uint32_t key_len = 0, val_len = 0;
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&key_len));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&val_len));
  const size_t header = chunk_.size() - pos_ - dec.remaining();
  if (dec.remaining() < static_cast<size_t>(key_len) + val_len) {
    return Status::Corruption("record stream: record overruns chunk");
  }
  const char* base = chunk_.data() + pos_ + header;
  *key = std::string_view(base, key_len);
  *value = std::string_view(base + key_len, val_len);
  pos_ += header + key_len + val_len;
  records_ += 1;
  payload_bytes_ += key_len + val_len;
  *has_record = true;
  return Status::OK();
}

}  // namespace fsjoin::net
