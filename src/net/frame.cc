#include "net/frame.h"

#include "util/crc32c.h"
#include "util/serde.h"

namespace fsjoin::net {

namespace {

bool ValidMsgType(uint32_t type) {
  return type >= static_cast<uint32_t>(MsgType::kHello) &&
         type <= static_cast<uint32_t>(MsgType::kShuffleRelease);
}

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello:
      return "hello";
    case MsgType::kHelloAck:
      return "hello-ack";
    case MsgType::kHeartbeat:
      return "heartbeat";
    case MsgType::kHeartbeatAck:
      return "heartbeat-ack";
    case MsgType::kDispatchTask:
      return "dispatch-task";
    case MsgType::kTaskData:
      return "task-data";
    case MsgType::kTaskDataEnd:
      return "task-data-end";
    case MsgType::kTaskResult:
      return "task-result";
    case MsgType::kTaskError:
      return "task-error";
    case MsgType::kShutdown:
      return "shutdown";
    case MsgType::kShuffleFetch:
      return "shuffle-fetch";
    case MsgType::kShuffleChunk:
      return "shuffle-chunk";
    case MsgType::kShuffleEnd:
      return "shuffle-end";
    case MsgType::kShuffleRelease:
      return "shuffle-release";
  }
  return "?";
}

void EncodeFrame(MsgType type, std::string_view payload, std::string* dst) {
  const size_t header_at = dst->size();
  PutFixed32BE(dst, kFrameMagic);
  PutFixed32BE(dst, static_cast<uint32_t>(type));
  PutFixed32BE(dst, static_cast<uint32_t>(payload.size()));
  const uint32_t hcrc =
      Crc32c(std::string_view(dst->data() + header_at, 12));
  PutFixed32BE(dst, hcrc);
  PutFixed32BE(dst, Crc32c(payload));
  dst->append(payload);
}

Status DecodeFrame(std::string_view data, Frame* frame, size_t* consumed) {
  if (data.size() < kFrameHeaderBytes) {
    return Status::IoError("frame truncated: " + std::to_string(data.size()) +
                           " of " + std::to_string(kFrameHeaderBytes) +
                           " header bytes");
  }
  Decoder dec(data.substr(0, kFrameHeaderBytes));
  uint32_t magic = 0, type = 0, len = 0, hcrc = 0, pcrc = 0;
  FSJOIN_RETURN_NOT_OK(dec.GetFixed32BE(&magic));
  FSJOIN_RETURN_NOT_OK(dec.GetFixed32BE(&type));
  FSJOIN_RETURN_NOT_OK(dec.GetFixed32BE(&len));
  FSJOIN_RETURN_NOT_OK(dec.GetFixed32BE(&hcrc));
  FSJOIN_RETURN_NOT_OK(dec.GetFixed32BE(&pcrc));
  if (magic != kFrameMagic) {
    return Status::Corruption("frame: bad magic (stream out of sync?)");
  }
  if (Crc32c(data.substr(0, 12)) != hcrc) {
    return Status::Corruption("frame: header CRC mismatch");
  }
  // Only trusted after the header CRC check — a flipped length bit must
  // not drive the reads below.
  if (!ValidMsgType(type)) {
    return Status::Corruption("frame: unknown message type " +
                              std::to_string(type));
  }
  if (len > kMaxFramePayload) {
    return Status::Corruption("frame: payload length " + std::to_string(len) +
                              " exceeds limit");
  }
  if (data.size() < kFrameHeaderBytes + len) {
    return Status::IoError("frame truncated: " +
                           std::to_string(data.size() - kFrameHeaderBytes) +
                           " of " + std::to_string(len) + " payload bytes");
  }
  const std::string_view payload = data.substr(kFrameHeaderBytes, len);
  if (Crc32c(payload) != pcrc) {
    return Status::Corruption("frame: payload CRC mismatch");
  }
  frame->type = static_cast<MsgType>(type);
  frame->payload = std::string(payload);
  *consumed = kFrameHeaderBytes + len;
  return Status::OK();
}

Status SendFrame(Socket* socket, MsgType type, std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  EncodeFrame(type, payload, &frame);
  return socket->SendAll(frame.data(), frame.size());
}

Status RecvFrame(Socket* socket, Frame* frame) {
  char header[kFrameHeaderBytes];
  FSJOIN_RETURN_NOT_OK(socket->RecvAll(header, sizeof(header)));
  Decoder dec(std::string_view(header, sizeof(header)));
  uint32_t magic = 0, type = 0, len = 0, hcrc = 0, pcrc = 0;
  FSJOIN_RETURN_NOT_OK(dec.GetFixed32BE(&magic));
  FSJOIN_RETURN_NOT_OK(dec.GetFixed32BE(&type));
  FSJOIN_RETURN_NOT_OK(dec.GetFixed32BE(&len));
  FSJOIN_RETURN_NOT_OK(dec.GetFixed32BE(&hcrc));
  FSJOIN_RETURN_NOT_OK(dec.GetFixed32BE(&pcrc));
  if (magic != kFrameMagic) {
    return Status::Corruption("frame: bad magic (stream out of sync?)");
  }
  if (Crc32c(std::string_view(header, 12)) != hcrc) {
    return Status::Corruption("frame: header CRC mismatch");
  }
  if (!ValidMsgType(type)) {
    return Status::Corruption("frame: unknown message type " +
                              std::to_string(type));
  }
  if (len > kMaxFramePayload) {
    return Status::Corruption("frame: payload length " + std::to_string(len) +
                              " exceeds limit");
  }
  frame->type = static_cast<MsgType>(type);
  frame->payload.resize(len);
  if (len > 0) {
    FSJOIN_RETURN_NOT_OK(socket->RecvAll(frame->payload.data(), len));
  }
  if (Crc32c(frame->payload) != pcrc) {
    return Status::Corruption("frame: payload CRC mismatch");
  }
  return Status::OK();
}

void HelloMsg::EncodeTo(std::string* dst) const {
  PutVarint32(dst, protocol_version);
  PutVarint64(dst, pid);
  PutVarint32(dst, shuffle_port);
}

Result<HelloMsg> HelloMsg::Decode(std::string_view data) {
  Decoder dec(data);
  HelloMsg msg;
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&msg.protocol_version));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&msg.pid));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&msg.shuffle_port));
  if (!dec.done()) return Status::Corruption("hello: trailing bytes");
  return msg;
}

void HelloAckMsg::EncodeTo(std::string* dst) const {
  PutVarint32(dst, worker_id);
}

Result<HelloAckMsg> HelloAckMsg::Decode(std::string_view data) {
  Decoder dec(data);
  HelloAckMsg msg;
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&msg.worker_id));
  if (!dec.done()) return Status::Corruption("hello-ack: trailing bytes");
  return msg;
}

void StreamTrailer::EncodeTo(std::string* dst) const {
  PutVarint64(dst, records);
  PutVarint64(dst, payload_bytes);
  PutVarint32(dst, chunks);
}

Result<StreamTrailer> StreamTrailer::Decode(std::string_view data) {
  Decoder dec(data);
  StreamTrailer trailer;
  FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&trailer.records));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&trailer.payload_bytes));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&trailer.chunks));
  if (!dec.done()) return Status::Corruption("stream trailer: trailing bytes");
  return trailer;
}

void TaskErrorMsg::EncodeTo(std::string* dst) const {
  PutVarint32(dst, static_cast<uint32_t>(error.code()));
  PutLengthPrefixed(dst, error.message());
  PutLengthPrefixed(dst, lost_endpoint);
}

Result<TaskErrorMsg> TaskErrorMsg::Decode(std::string_view data) {
  Decoder dec(data);
  uint32_t code = 0;
  std::string_view message, lost;
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&code));
  FSJOIN_RETURN_NOT_OK(dec.GetLengthPrefixed(&message));
  FSJOIN_RETURN_NOT_OK(dec.GetLengthPrefixed(&lost));
  if (code == 0 || code > static_cast<uint32_t>(StatusCode::kCorruption)) {
    return Status::Corruption("task error: bad status code " +
                              std::to_string(code));
  }
  if (!dec.done()) return Status::Corruption("task error: trailing bytes");
  TaskErrorMsg msg;
  msg.error = Status(static_cast<StatusCode>(code), std::string(message));
  msg.lost_endpoint = std::string(lost);
  return msg;
}

void ShuffleFetchMsg::EncodeTo(std::string* dst) const {
  PutLengthPrefixed(dst, job);
  PutVarint32(dst, map_task);
  PutVarint32(dst, partition);
}

Result<ShuffleFetchMsg> ShuffleFetchMsg::Decode(std::string_view data) {
  Decoder dec(data);
  ShuffleFetchMsg msg;
  std::string_view job;
  FSJOIN_RETURN_NOT_OK(dec.GetLengthPrefixed(&job));
  msg.job = std::string(job);
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&msg.map_task));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&msg.partition));
  if (!dec.done()) return Status::Corruption("shuffle fetch: trailing bytes");
  return msg;
}

void AppendChunkRecord(std::string* chunk, std::string_view key,
                       std::string_view value) {
  PutVarint32(chunk, static_cast<uint32_t>(key.size()));
  PutVarint32(chunk, static_cast<uint32_t>(value.size()));
  chunk->append(key);
  chunk->append(value);
}

}  // namespace fsjoin::net
