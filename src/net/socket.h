#ifndef FSJOIN_NET_SOCKET_H_
#define FSJOIN_NET_SOCKET_H_

#include <cstddef>
#include <string>
#include <utility>

#include "util/endpoint.h"
#include "util/status.h"

namespace fsjoin::net {

/// Thin RAII wrappers over POSIX TCP sockets — just enough transport for
/// the cluster RPC layer (net/frame.h): blocking whole-buffer send/recv,
/// poll-based readability waits for heartbeat timeouts, and an ephemeral-
/// port listener. No TLS, no Nagle tuning beyond TCP_NODELAY; the
/// integrity story is the frame layer's CRC32C, the security story is
/// "run it on your own network", like Hadoop's unauthenticated RPC era.
///
/// Windows builds compile these as stubs returning Unimplemented — the
/// cluster runtime is POSIX-only, like the subprocess runner's fork path.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  /// Dials `endpoint` (numeric address or resolvable name), failing after
  /// `timeout_ms`. The returned socket has TCP_NODELAY set — RPC frames
  /// are latency-bound, not throughput-bound.
  static Result<Socket> Connect(const Endpoint& endpoint, int timeout_ms);

  /// A connected pair of local sockets (socketpair) — for tests that need
  /// a real byte pipe without a listener.
  static Result<std::pair<Socket, Socket>> Pair();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all `n` bytes (retrying partial writes / EINTR).
  Status SendAll(const void* data, size_t n);

  /// Reads exactly `n` bytes. A clean peer close mid-read (or before any
  /// byte) returns IoError("connection closed ...") — the caller decides
  /// whether that close was expected.
  Status RecvAll(void* data, size_t n);

  /// Polls for readability. Sets *readable and returns OK on poll success
  /// (false = timeout); IoError when the descriptor is dead.
  Status WaitReadable(int timeout_ms, bool* readable);

  void Close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket. Listen on port 0 for an ephemeral port and read
/// it back with port() — how spawned local workers and per-worker shuffle
/// servers avoid port configuration entirely.
class Listener {
 public:
  Listener() = default;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// The backlog must exceed the worst-case connection burst: every reduce
  /// task opens one shuffle-fetch connection per map task in a tight loop,
  /// and with few workers all of them land on the same shuffle server. A
  /// backlog smaller than that fan-in overflows the accept queue and the
  /// dropped handshakes stall on TCP retransmission timers (~200ms-1s per
  /// reduce, pure wall-clock with zero CPU).
  static Result<Listener> Listen(const std::string& host, uint16_t port,
                                 int backlog = 512);

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }

  /// Accepts one connection, waiting at most `timeout_ms` (< 0 = forever).
  /// Timeout surfaces as IoError("accept timed out ...").
  Result<Socket> Accept(int timeout_ms);

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace fsjoin::net

#endif  // FSJOIN_NET_SOCKET_H_
