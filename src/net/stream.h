#ifndef FSJOIN_NET_STREAM_H_
#define FSJOIN_NET_STREAM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "net/frame.h"
#include "net/socket.h"
#include "store/record_stream.h"
#include "util/status.h"

namespace fsjoin::net {

/// Writer half of a record stream over frames: buffers records into
/// ~kChunkTargetBytes chunks, sends each as one `chunk_type` frame, and
/// finishes with an `end_type` trailer carrying the totals the reader
/// cross-checks. Used for coordinator -> worker input runs (kTaskData/
/// kTaskDataEnd) and worker -> worker shuffle fetches (kShuffleChunk/
/// kShuffleEnd).
class ChunkStreamWriter {
 public:
  ChunkStreamWriter(Socket* socket, MsgType chunk_type, MsgType end_type)
      : socket_(socket), chunk_type_(chunk_type), end_type_(end_type) {}

  Status Add(std::string_view key, std::string_view value);

  /// Flushes the last chunk and sends the trailer. Call exactly once.
  Status Finish();

  uint64_t records() const { return records_; }
  uint64_t payload_bytes() const { return payload_bytes_; }

 private:
  Status FlushChunk();

  Socket* socket_;
  MsgType chunk_type_;
  MsgType end_type_;
  std::string chunk_;
  uint64_t records_ = 0;
  uint64_t payload_bytes_ = 0;
  uint32_t chunks_ = 0;
};

/// Reader half: a store::RecordStream that pulls `chunk_type` frames off a
/// socket lazily — one chunk resident at a time — so a loser-tree merge
/// over k remote sources streams with O(k) chunk buffers, exactly like
/// merging k spill runs from disk. The `end_type` trailer is verified
/// against the running record/byte/chunk counts (a lost or replayed frame
/// is Corruption, not silent data loss). A kTaskError frame in place of a
/// chunk carries the sender's Status and fails the stream with it.
///
/// If the stream came with key-sorted records (retained shuffle partitions
/// always are), Next() yields them in key order, making this a valid merge
/// source.
class FrameRecordStream : public store::RecordStream {
 public:
  /// `socket` is borrowed and must stay open while the stream is consumed.
  FrameRecordStream(Socket* socket, MsgType chunk_type, MsgType end_type)
      : socket_(socket), chunk_type_(chunk_type), end_type_(end_type) {}

  Status Next(bool* has_record, std::string_view* key,
              std::string_view* value) override;

  /// Totals consumed so far (== the trailer's totals once exhausted).
  uint64_t records() const { return records_; }
  uint64_t payload_bytes() const { return payload_bytes_; }

 private:
  Status FetchChunk();

  Socket* socket_;
  MsgType chunk_type_;
  MsgType end_type_;
  std::string chunk_;
  size_t pos_ = 0;
  bool done_ = false;
  uint64_t records_ = 0;
  uint64_t payload_bytes_ = 0;
  uint32_t chunks_ = 0;
};

}  // namespace fsjoin::net

#endif  // FSJOIN_NET_STREAM_H_
