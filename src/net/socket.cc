#include "net/socket.h"

#include <cstring>
#include <utility>

#ifndef _WIN32
#include <arpa/inet.h>
#include <cerrno>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace fsjoin::net {

#ifdef _WIN32

Socket::Socket(Socket&&) noexcept = default;
Socket& Socket::operator=(Socket&&) noexcept = default;
Socket::~Socket() = default;
Result<Socket> Socket::Connect(const Endpoint&, int) {
  return Status::Unimplemented("cluster sockets require POSIX");
}
Result<std::pair<Socket, Socket>> Socket::Pair() {
  return Status::Unimplemented("cluster sockets require POSIX");
}
Status Socket::SendAll(const void*, size_t) {
  return Status::Unimplemented("cluster sockets require POSIX");
}
Status Socket::RecvAll(void*, size_t) {
  return Status::Unimplemented("cluster sockets require POSIX");
}
Status Socket::WaitReadable(int, bool*) {
  return Status::Unimplemented("cluster sockets require POSIX");
}
void Socket::Close() {}
Listener::Listener(Listener&&) noexcept = default;
Listener& Listener::operator=(Listener&&) noexcept = default;
Listener::~Listener() = default;
Result<Listener> Listener::Listen(const std::string&, uint16_t, int) {
  return Status::Unimplemented("cluster sockets require POSIX");
}
Result<Socket> Listener::Accept(int) {
  return Status::Unimplemented("cluster sockets require POSIX");
}
void Listener::Close() {}

#else  // !_WIN32

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Blocks SIGPIPE per send (MSG_NOSIGNAL): a peer that died mid-frame must
/// surface as an IoError the runner can handle, not kill the coordinator.
Status SendBytes(int fd, const char* data, size_t n) {
  while (n > 0) {
    const ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Errno("send failed");
    }
    data += sent;
    n -= static_cast<size_t>(sent);
  }
  return Status::OK();
}

}  // namespace

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Socket::~Socket() { Close(); }

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Socket::Connect(const Endpoint& endpoint, int timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string port = std::to_string(endpoint.port);
  const int rc = getaddrinfo(endpoint.host.c_str(), port.c_str(), &hints,
                             &result);
  if (rc != 0) {
    return Status::IoError("cannot resolve " + endpoint.ToString() + ": " +
                           gai_strerror(rc));
  }
  Status last = Status::IoError("no addresses for " + endpoint.ToString());
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket failed");
      continue;
    }
    // Non-blocking connect + poll gives a real timeout; a worker that is
    // down should fail fast, not hang in the kernel's SYN retries.
    const int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int crc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (crc < 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      const int prc = ::poll(&pfd, 1, timeout_ms);
      if (prc <= 0) {
        last = prc == 0 ? Status::IoError("connect to " +
                                          endpoint.ToString() + " timed out")
                        : Errno("poll failed");
        ::close(fd);
        continue;
      }
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
      if (soerr != 0) {
        last = Status::IoError("connect to " + endpoint.ToString() +
                               " failed: " + std::strerror(soerr));
        ::close(fd);
        continue;
      }
    } else if (crc < 0) {
      last = Status::IoError("connect to " + endpoint.ToString() +
                             " failed: " + std::strerror(errno));
      ::close(fd);
      continue;
    }
    fcntl(fd, F_SETFL, flags);
    SetNoDelay(fd);
    freeaddrinfo(result);
    return Socket(fd);
  }
  freeaddrinfo(result);
  return last;
}

Result<std::pair<Socket, Socket>> Socket::Pair() {
  int fds[2] = {-1, -1};
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Errno("socketpair failed");
  }
  return std::make_pair(Socket(fds[0]), Socket(fds[1]));
}

Status Socket::SendAll(const void* data, size_t n) {
  if (fd_ < 0) return Status::IoError("send on closed socket");
  return SendBytes(fd_, static_cast<const char*>(data), n);
}

Status Socket::RecvAll(void* data, size_t n) {
  if (fd_ < 0) return Status::IoError("recv on closed socket");
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t got = ::recv(fd_, p, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("recv failed");
    }
    if (got == 0) {
      return Status::IoError("connection closed by peer");
    }
    p += got;
    n -= static_cast<size_t>(got);
  }
  return Status::OK();
}

Status Socket::WaitReadable(int timeout_ms, bool* readable) {
  *readable = false;
  if (fd_ < 0) return Status::IoError("wait on closed socket");
  pollfd pfd{fd_, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll failed");
  // POLLHUP/POLLERR count as readable: the next recv reports the close.
  *readable = rc > 0;
  return Status::OK();
}

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

Listener::~Listener() { Close(); }

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Listener> Listener::Listen(const std::string& host, uint16_t port,
                                  int backlog) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* result = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = getaddrinfo(host.empty() ? nullptr : host.c_str(),
                             port_str.c_str(), &hints, &result);
  if (rc != 0) {
    return Status::IoError("cannot resolve listen host '" + host +
                           "': " + gai_strerror(rc));
  }
  Status last = Status::IoError("no addresses for listen host '" + host + "'");
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket failed");
      continue;
    }
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, backlog) != 0) {
      last = Errno("bind/listen on " + host + ":" + port_str + " failed");
      ::close(fd);
      continue;
    }
    sockaddr_storage addr{};
    socklen_t len = sizeof(addr);
    uint16_t bound = port;
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      if (addr.ss_family == AF_INET) {
        bound = ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
      } else if (addr.ss_family == AF_INET6) {
        bound = ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
      }
    }
    freeaddrinfo(result);
    Listener listener;
    listener.fd_ = fd;
    listener.port_ = bound;
    return listener;
  }
  freeaddrinfo(result);
  return last;
}

Result<Socket> Listener::Accept(int timeout_ms) {
  if (fd_ < 0) return Status::IoError("accept on closed listener");
  pollfd pfd{fd_, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll failed");
  if (rc == 0) {
    return Status::IoError("accept timed out after " +
                           std::to_string(timeout_ms) + " ms");
  }
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno("accept failed");
  SetNoDelay(fd);
  return Socket(fd);
}

#endif  // _WIN32

}  // namespace fsjoin::net
