#ifndef FSJOIN_NET_CLUSTER_RUNNER_H_
#define FSJOIN_NET_CLUSTER_RUNNER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "mr/runner.h"
#include "net/socket.h"
#include "util/endpoint.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fsjoin::net {

/// Cluster topology and liveness knobs for ClusterTaskRunner::Create.
struct ClusterOptions {
  /// Dial mode: pre-started fsjoin_worker processes to connect to.
  std::vector<Endpoint> workers;
  /// Spawn mode: fork/exec this many loopback workers from the current
  /// binary (requires a main() routed through WorkerServeMainIfRequested).
  /// Exactly one of workers/spawn_local_workers must be set.
  int spawn_local_workers = 0;
  /// Liveness probe interval: while waiting on a busy worker the
  /// coordinator probes every heartbeat_ms and declares the worker dead
  /// after kMaxMissedHeartbeats unanswered probes.
  int heartbeat_ms = 2000;
  /// Coordinator-side concurrency (input-run streaming, fallback
  /// subprocess tasks). The dispatch pool is always at least as wide as
  /// the worker count, so every worker can hold a task.
  size_t num_threads = 0;
  /// Connect/handshake timeout per worker.
  int timeout_ms = 10000;
};

inline constexpr int kMaxMissedHeartbeats = 3;

/// TaskRunner executing tasks on socket-RPC workers (DESIGN.md §5j).
///
/// Remote-capable specs — retain_shuffle map tasks and shuffle-source
/// reduce tasks, which the engine only emits for factory-named jobs — are
/// dispatched to workers over the framed RPC protocol (net/frame.h), with
/// map input streamed from the coordinator's run files and reduce input
/// pulled worker-to-worker over the network shuffle. Closure-only specs
/// (flow-backend tasks, jobs without a registered factory) fall back to an
/// internal SubprocessRunner: same isolation contract, local transport.
///
/// Failure model: a worker is dead when its connection errors or it misses
/// kMaxMissedHeartbeats probes. The coordinator then re-runs the dead
/// worker's retained map tasks on survivors (it kept their specs, and
/// their input runs live in the job scratch dir until the job ends),
/// repairs the location table, and fails the in-flight task with a
/// retryable error — the scheduler's ordinary retry budget covers the
/// rest, and metrics still merge exactly once because only the final
/// successful attempt reaches on_done.
class ClusterTaskRunner : public mr::TaskRunner {
 public:
  static Result<std::unique_ptr<ClusterTaskRunner>> Create(
      const ClusterOptions& options);

  /// Sends kShutdown to live workers and reaps spawned ones.
  ~ClusterTaskRunner() override;

  const char* name() const override { return "cluster"; }
  bool isolated() const override { return true; }
  bool retryable() const override { return true; }
  bool distributed() const override { return true; }
  void ParallelRun(size_t n, const std::function<void(size_t)>& fn) override;
  Status RunAttempt(const mr::TaskSpec& spec, const mr::TaskBody& body,
                    const mr::TaskSideChannel& side,
                    mr::TaskOutput* out) override;
  /// Broadcasts kShuffleRelease and drops the job's location table.
  void FinishJob(const std::string& job_name) override;

  /// Workers still answering (for tests and diagnostics).
  size_t alive_workers() const;

 private:
  struct WorkerConn {
    Socket control;
    std::string shuffle_endpoint;  ///< "host:port" of its shuffle server
    bool alive = false;
    bool busy = false;
    int64_t child_pid = -1;  ///< spawned workers only
  };

  using TaskKey = std::pair<std::string, uint32_t>;  // (job, map task)

  ClusterTaskRunner(const ClusterOptions& options, size_t worker_count);

  Status Init();
  Status AttachWorker(size_t index, Socket control,
                      const std::string& shuffle_host);

  Result<size_t> AcquireWorker();
  void ReleaseWorker(size_t w);

  /// Runs one remote-capable spec: acquire, dispatch, post-mortem
  /// bookkeeping (death recovery, location recording).
  Status RunRemote(const mr::TaskSpec& spec, mr::TaskOutput* out);

  /// One dispatch round-trip on worker `w` (held busy by the caller):
  /// kDispatchTask + input streams, then the probe/receive loop until
  /// kTaskResult/kTaskError. Sets *worker_died on connection loss or
  /// heartbeat timeout; sets *lost_endpoint from a kTaskError that blamed
  /// a dead shuffle source.
  Status DispatchToWorker(size_t w, const mr::TaskSpec& spec,
                          mr::TaskOutput* out, std::string* lost_endpoint,
                          bool* worker_died);

  /// Marks `w` dead (idempotent) and synchronously re-runs its retained
  /// map tasks on survivors. `held_by_caller` says the calling thread
  /// currently holds `w` busy and owns its socket.
  void HandleWorkerDeath(size_t w, bool held_by_caller);
  Status RedispatchRetained(mr::TaskSpec spec);
  void DropLocation(const TaskKey& key);

  /// Waits out any in-flight death recovery, then resolves every shuffle
  /// source of `spec` to its holder's live endpoint.
  Result<mr::TaskSpec> ResolveSources(const mr::TaskSpec& spec);

  int WorkerByShuffleEndpoint(const std::string& endpoint) const;

  ClusterOptions options_;
  ThreadPool pool_;
  std::unique_ptr<mr::SubprocessRunner> fallback_;
  std::string argv0_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<WorkerConn> workers_;
  int recovering_ = 0;
  std::map<TaskKey, size_t> locations_;       ///< retained map -> worker
  std::map<TaskKey, mr::TaskSpec> retained_;  ///< specs for re-dispatch
};

}  // namespace fsjoin::net

#endif  // FSJOIN_NET_CLUSTER_RUNNER_H_
