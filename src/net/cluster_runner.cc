#include "net/cluster_runner.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#ifndef _WIN32
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "net/frame.h"
#include "net/stream.h"
#include "net/worker.h"
#include "store/run_file.h"
#include "util/serde.h"

namespace fsjoin::net {

namespace {

std::string TaskLabel(const mr::TaskSpec& spec) {
  return spec.job_name + "/" + mr::TaskKindName(spec.kind) +
         std::to_string(spec.task_index);
}

}  // namespace

ClusterTaskRunner::ClusterTaskRunner(const ClusterOptions& options,
                                     size_t worker_count)
    : options_(options),
      pool_(std::max(options.num_threads, worker_count)),
      fallback_(std::make_unique<mr::SubprocessRunner>(options.num_threads)) {
#ifndef _WIN32
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    argv0_ = buf;
  }
#endif
  workers_.resize(worker_count);
}

Result<std::unique_ptr<ClusterTaskRunner>> ClusterTaskRunner::Create(
    const ClusterOptions& options) {
  const bool spawn = options.spawn_local_workers > 0;
  if (spawn == !options.workers.empty()) {
    return Status::InvalidArgument(
        "cluster runner needs exactly one of worker endpoints or "
        "spawn_local_workers");
  }
  if (options.heartbeat_ms < 50) {
    return Status::InvalidArgument(
        "heartbeat_ms must be >= 50, got " +
        std::to_string(options.heartbeat_ms));
  }
  const size_t count = spawn ? static_cast<size_t>(options.spawn_local_workers)
                             : options.workers.size();
  std::unique_ptr<ClusterTaskRunner> runner(
      new ClusterTaskRunner(options, count));
  FSJOIN_RETURN_NOT_OK(runner->Init());
  return runner;
}

#ifdef _WIN32

Status ClusterTaskRunner::Init() {
  return Status::Unimplemented("cluster runner requires POSIX sockets");
}

ClusterTaskRunner::~ClusterTaskRunner() = default;

#else  // !_WIN32

Status ClusterTaskRunner::Init() {
  if (options_.spawn_local_workers > 0) {
    if (!WorkerServeAvailable() || argv0_.empty()) {
      return Status::InvalidArgument(
          "spawn-local cluster workers need a binary routed through "
          "WorkerServeMainIfRequested");
    }
    FSJOIN_ASSIGN_OR_RETURN(Listener listener,
                            Listener::Listen("127.0.0.1", 0));
    const std::string coord =
        "127.0.0.1:" + std::to_string(listener.port());
    for (size_t i = 0; i < workers_.size(); ++i) {
      const char* argv[] = {argv0_.c_str(), "--worker-serve", coord.c_str(),
                            nullptr};
      std::lock_guard<std::mutex> lock(mr::ProcessForkMutex());
      const pid_t pid = fork();
      if (pid == 0) {
        execv(argv[0], const_cast<char* const*>(argv));
        _exit(127);
      }
      if (pid < 0) {
        return Status::Internal("fork failed for cluster worker: " +
                                std::string(std::strerror(errno)));
      }
      workers_[i].child_pid = pid;
    }
    for (size_t i = 0; i < workers_.size(); ++i) {
      FSJOIN_ASSIGN_OR_RETURN(Socket conn,
                              listener.Accept(options_.timeout_ms));
      FSJOIN_RETURN_NOT_OK(AttachWorker(i, std::move(conn), "127.0.0.1"));
    }
    return Status::OK();
  }
  for (size_t i = 0; i < workers_.size(); ++i) {
    const Endpoint& ep = options_.workers[i];
    FSJOIN_ASSIGN_OR_RETURN(Socket conn,
                            Socket::Connect(ep, options_.timeout_ms));
    FSJOIN_RETURN_NOT_OK(AttachWorker(i, std::move(conn), ep.host));
  }
  return Status::OK();
}

ClusterTaskRunner::~ClusterTaskRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (WorkerConn& wc : workers_) {
      if (wc.alive) {
        (void)SendFrame(&wc.control, MsgType::kShutdown, "");
      }
      wc.control.Close();
      wc.alive = false;
    }
  }
  for (const WorkerConn& wc : workers_) {
    if (wc.child_pid < 0) continue;
    int status = 0;
    pid_t waited;
    do {
      waited = waitpid(static_cast<pid_t>(wc.child_pid), &status, 0);
    } while (waited < 0 && errno == EINTR);
  }
}

#endif  // _WIN32

Status ClusterTaskRunner::AttachWorker(size_t index, Socket control,
                                       const std::string& shuffle_host) {
  Frame frame;
  FSJOIN_RETURN_NOT_OK(RecvFrame(&control, &frame));
  if (frame.type != MsgType::kHello) {
    return Status::Corruption(std::string("worker handshake: expected "
                                          "hello, got ") +
                              MsgTypeName(frame.type));
  }
  FSJOIN_ASSIGN_OR_RETURN(HelloMsg hello, HelloMsg::Decode(frame.payload));
  if (hello.protocol_version != kProtocolVersion) {
    return Status::InvalidArgument(
        "worker speaks protocol version " +
        std::to_string(hello.protocol_version) + ", coordinator speaks " +
        std::to_string(kProtocolVersion));
  }
  HelloAckMsg ack;
  ack.worker_id = static_cast<uint32_t>(index);
  std::string payload;
  ack.EncodeTo(&payload);
  FSJOIN_RETURN_NOT_OK(SendFrame(&control, MsgType::kHelloAck, payload));

  WorkerConn& wc = workers_[index];
  wc.control = std::move(control);
  wc.shuffle_endpoint =
      shuffle_host + ":" + std::to_string(hello.shuffle_port);
  wc.alive = true;
  return Status::OK();
}

void ClusterTaskRunner::ParallelRun(size_t n,
                                    const std::function<void(size_t)>& fn) {
  pool_.ParallelFor(n, fn);
}

size_t ClusterTaskRunner::alive_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t alive = 0;
  for (const WorkerConn& wc : workers_) {
    if (wc.alive) ++alive;
  }
  return alive;
}

Result<size_t> ClusterTaskRunner::AcquireWorker() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    size_t alive = 0;
    for (size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].alive) continue;
      ++alive;
      if (!workers_[i].busy) {
        workers_[i].busy = true;
        return i;
      }
    }
    if (alive == 0) {
      return Status::Internal("no alive cluster workers left");
    }
    cv_.wait(lock);
  }
}

void ClusterTaskRunner::ReleaseWorker(size_t w) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers_[w].busy = false;
  }
  cv_.notify_all();
}

Status ClusterTaskRunner::RunAttempt(const mr::TaskSpec& spec,
                                     const mr::TaskBody& body,
                                     const mr::TaskSideChannel& side,
                                     mr::TaskOutput* out) {
  // Only retained-shuffle maps and network-shuffle reduces cross the wire;
  // everything else (closure tasks, factory tasks of non-distributed
  // shape) keeps the subprocess runner's local isolation contract.
  const bool remote = spec.retain_shuffle || !spec.shuffle_sources.empty();
  if (!remote) {
    return fallback_->RunAttempt(spec, body, side, out);
  }
  if (spec.shuffle_sources.empty()) {
    return RunRemote(spec, out);
  }
  FSJOIN_ASSIGN_OR_RETURN(mr::TaskSpec resolved, ResolveSources(spec));
  return RunRemote(resolved, out);
}

Status ClusterTaskRunner::RunRemote(const mr::TaskSpec& spec,
                                    mr::TaskOutput* out) {
  FSJOIN_ASSIGN_OR_RETURN(size_t w, AcquireWorker());
  std::string lost_endpoint;
  bool worker_died = false;
  Status st = DispatchToWorker(w, spec, out, &lost_endpoint, &worker_died);
  if (worker_died) {
    HandleWorkerDeath(w, /*held_by_caller=*/true);
    return st;
  }
  if (st.ok() && spec.retain_shuffle) {
    std::lock_guard<std::mutex> lock(mu_);
    const TaskKey key{spec.job_name, spec.task_index};
    locations_[key] = w;
    retained_[key] = spec;
    out->shuffle_endpoint = workers_[w].shuffle_endpoint;
  }
  ReleaseWorker(w);
  if (!st.ok() && !lost_endpoint.empty()) {
    const int lw = WorkerByShuffleEndpoint(lost_endpoint);
    if (lw >= 0) {
      HandleWorkerDeath(static_cast<size_t>(lw), /*held_by_caller=*/false);
    }
  }
  return st;
}

Status ClusterTaskRunner::DispatchToWorker(size_t w, const mr::TaskSpec& spec,
                                           mr::TaskOutput* out,
                                           std::string* lost_endpoint,
                                           bool* worker_died) {
  Socket& sock = workers_[w].control;
  const std::string label = TaskLabel(spec);
  auto died = [&](const Status& st) {
    *worker_died = true;
    return Status::Internal("worker " + std::to_string(w) + " died during '" +
                            label + "': " + st.message());
  };

  std::string payload;
  PutVarint32(&payload, static_cast<uint32_t>(spec.input_runs.size()));
  std::string spec_bytes;
  spec.EncodeTo(&spec_bytes);
  PutLengthPrefixed(&payload, spec_bytes);
  Status st = SendFrame(&sock, MsgType::kDispatchTask, payload);
  if (!st.ok()) return died(st);

  for (const std::string& path : spec.input_runs) {
    Result<std::unique_ptr<store::RunReader>> reader =
        store::RunReader::Open(path);
    if (!reader.ok()) {
      // Coordinator-side fault, but the worker is now mid-protocol waiting
      // for this stream; abandon the connection so it resets cleanly.
      *worker_died = true;
      return reader.status();
    }
    ChunkStreamWriter writer(&sock, MsgType::kTaskData, MsgType::kTaskDataEnd);
    bool has = false;
    std::string_view key, value;
    for (;;) {
      st = (*reader)->Next(&has, &key, &value);
      if (!st.ok()) {
        *worker_died = true;
        return st;
      }
      if (!has) break;
      st = writer.Add(key, value);
      if (!st.ok()) return died(st);
    }
    st = writer.Finish();
    if (!st.ok()) return died(st);
  }

  // Probe/receive loop: every silent heartbeat interval costs one probe;
  // kMaxMissedHeartbeats consecutive silent intervals is a death.
  int missed = 0;
  for (;;) {
    bool readable = false;
    st = sock.WaitReadable(options_.heartbeat_ms, &readable);
    if (!st.ok()) return died(st);
    if (!readable) {
      if (missed >= kMaxMissedHeartbeats) {
        return died(Status::IoError(
            "missed " + std::to_string(missed) + " heartbeats"));
      }
      st = SendFrame(&sock, MsgType::kHeartbeat, "");
      if (!st.ok()) return died(st);
      ++missed;
      continue;
    }
    Frame frame;
    st = RecvFrame(&sock, &frame);
    if (!st.ok()) return died(st);
    switch (frame.type) {
      case MsgType::kHeartbeatAck:
        missed = 0;
        continue;
      case MsgType::kTaskResult:
        return DecodeTaskOutputWire(frame.payload, out);
      case MsgType::kTaskError: {
        FSJOIN_ASSIGN_OR_RETURN(TaskErrorMsg msg,
                                TaskErrorMsg::Decode(frame.payload));
        *lost_endpoint = msg.lost_endpoint;
        return msg.error;
      }
      default:
        return died(Status::Corruption(
            std::string("unexpected ") + MsgTypeName(frame.type) + " frame"));
    }
  }
}

void ClusterTaskRunner::HandleWorkerDeath(size_t w, bool held_by_caller) {
  std::vector<mr::TaskSpec> orphans;
  bool recover = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    WorkerConn& wc = workers_[w];
    if (wc.alive) {
      wc.alive = false;
      recover = true;
      recovering_ += 1;
      for (const auto& [key, widx] : locations_) {
        if (widx == w) orphans.push_back(retained_.at(key));
      }
    }
    if (held_by_caller) {
      wc.control.Close();
      wc.busy = false;
    } else if (recover && !wc.busy) {
      wc.control.Close();
    }
    // Dead-but-busy: the holder's dispatch fails on its own and closes the
    // socket then — never close a socket another thread is using.
  }
  cv_.notify_all();
  if (!recover) return;
  for (mr::TaskSpec& spec : orphans) {
    // A bumped attempt labels the re-run and keeps matching fault
    // injections (FSJOIN_WORKER_FAULT) from re-firing on the survivor.
    spec.attempt += 1;
    (void)RedispatchRetained(std::move(spec));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    recovering_ -= 1;
  }
  cv_.notify_all();
}

Status ClusterTaskRunner::RedispatchRetained(mr::TaskSpec spec) {
  const TaskKey key{spec.job_name, spec.task_index};
  for (;;) {
    Result<size_t> w = AcquireWorker();
    if (!w.ok()) {
      DropLocation(key);
      return w.status();
    }
    mr::TaskOutput scratch;
    std::string lost_endpoint;
    bool worker_died = false;
    Status st =
        DispatchToWorker(*w, spec, &scratch, &lost_endpoint, &worker_died);
    if (worker_died) {
      HandleWorkerDeath(*w, /*held_by_caller=*/true);
      spec.attempt += 1;
      continue;
    }
    if (st.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      locations_[key] = *w;
      retained_[key] = spec;
    }
    ReleaseWorker(*w);
    if (!st.ok()) DropLocation(key);
    return st;
  }
}

void ClusterTaskRunner::DropLocation(const TaskKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  locations_.erase(key);
  retained_.erase(key);
}

Result<mr::TaskSpec> ClusterTaskRunner::ResolveSources(
    const mr::TaskSpec& spec) {
  mr::TaskSpec resolved = spec;
  std::unique_lock<std::mutex> lock(mu_);
  // Let an in-flight death recovery repair the location table first, so a
  // retried reduce doesn't burn its budget racing the map re-runs.
  cv_.wait(lock, [this] { return recovering_ == 0; });
  for (mr::ShuffleSource& src : resolved.shuffle_sources) {
    auto it = locations_.find({src.job, src.map_task});
    if (it == locations_.end() || !workers_[it->second].alive) {
      return Status::Internal(
          "map output of job '" + src.job + "' task " +
          std::to_string(src.map_task) +
          " is lost (worker died and recovery failed)");
    }
    src.endpoint = workers_[it->second].shuffle_endpoint;
  }
  return resolved;
}

int ClusterTaskRunner::WorkerByShuffleEndpoint(
    const std::string& endpoint) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i].shuffle_endpoint == endpoint) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void ClusterTaskRunner::FinishJob(const std::string& job_name) {
  std::string payload;
  PutLengthPrefixed(&payload, job_name);
  std::lock_guard<std::mutex> lock(mu_);
  for (WorkerConn& wc : workers_) {
    if (wc.alive && !wc.busy) {
      (void)SendFrame(&wc.control, MsgType::kShuffleRelease, payload);
    }
  }
  for (auto it = locations_.begin(); it != locations_.end();) {
    it = it->first.first == job_name ? locations_.erase(it) : std::next(it);
  }
  for (auto it = retained_.begin(); it != retained_.end();) {
    it = it->first.first == job_name ? retained_.erase(it) : std::next(it);
  }
}

}  // namespace fsjoin::net
