#include "net/worker.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "mr/shuffle.h"
#include "mr/task.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/stream.h"
#include "store/merge.h"
#include "util/endpoint.h"
#include "util/serde.h"
#include "util/timer.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace fsjoin::net {

namespace {

std::atomic<bool> g_worker_serve_available{false};

uint64_t CurrentPid() {
#ifdef _WIN32
  return 0;
#else
  return static_cast<uint64_t>(::getpid());
#endif
}

/// FSJOIN_WORKER_FAULT="job:kind:index:attempt" — _exit(3) mid-task when a
/// dispatched task matches all four fields. Attempt is part of the match so
/// the retried attempt (and re-dispatched siblings, which arrive with a
/// bumped attempt) survive on the remaining workers.
bool FaultMatches(const mr::TaskSpec& spec) {
  const char* env = std::getenv("FSJOIN_WORKER_FAULT");
  if (env == nullptr || *env == '\0') return false;
  std::string_view text(env);
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (parts.size() < 3) {
    const size_t colon = text.find(':', start);
    if (colon == std::string_view::npos) return false;
    parts.push_back(text.substr(start, colon - start));
    start = colon + 1;
  }
  parts.push_back(text.substr(start));
  return parts[0] == spec.job_name &&
         parts[1] == mr::TaskKindName(spec.kind) &&
         parts[2] == std::to_string(spec.task_index) &&
         parts[3] == std::to_string(spec.attempt);
}

/// Retained map output: one sorted ShuffleShard per reduce partition,
/// immutable once stored (fetchers hold the shared_ptr while streaming, so
/// a release during an in-flight fetch cannot free records under it).
class ShuffleStore {
 public:
  using Shards = std::vector<mr::ShuffleShard>;

  void Put(const std::string& job, uint32_t map_task,
           std::shared_ptr<const Shards> shards) {
    std::lock_guard<std::mutex> lock(mu_);
    retained_[{job, map_task}] = std::move(shards);
  }

  std::shared_ptr<const Shards> Find(const std::string& job,
                                     uint32_t map_task) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = retained_.find({job, map_task});
    return it == retained_.end() ? nullptr : it->second;
  }

  void ReleaseJob(const std::string& job) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = retained_.begin(); it != retained_.end();) {
      it = it->first.first == job ? retained_.erase(it) : std::next(it);
    }
  }

 private:
  std::mutex mu_;
  std::map<std::pair<std::string, uint32_t>, std::shared_ptr<const Shards>>
      retained_;
};

/// Serves kShuffleFetch requests from peer workers (and self-fetches over
/// loopback): one thread per connection, each streaming whole sorted
/// partitions as kShuffleChunk/kShuffleEnd.
class ShuffleServer {
 public:
  explicit ShuffleServer(ShuffleStore* store) : store_(store) {}

  ~ShuffleServer() { Stop(); }

  Status Start(const std::string& host) {
    FSJOIN_ASSIGN_OR_RETURN(listener_, Listener::Listen(host, 0));
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    return Status::OK();
  }

  uint16_t port() const { return listener_.port(); }

  void Stop() {
    if (stop_.exchange(true)) return;
    if (accept_thread_.joinable()) accept_thread_.join();
    listener_.Close();
    std::vector<std::thread> conns;
    {
      std::lock_guard<std::mutex> lock(mu_);
      conns = std::move(conn_threads_);
    }
    for (std::thread& t : conns) {
      if (t.joinable()) t.join();
    }
  }

 private:
  void AcceptLoop() {
    while (!stop_.load()) {
      Result<Socket> conn = listener_.Accept(/*timeout_ms=*/200);
      if (!conn.ok()) continue;  // timeout or transient error; poll stop flag
      std::lock_guard<std::mutex> lock(mu_);
      conn_threads_.emplace_back(
          [this, sock = std::make_shared<Socket>(std::move(*conn))]() mutable {
            ServeConn(sock.get());
          });
    }
  }

  void ServeConn(Socket* sock) {
    for (;;) {
      Frame frame;
      if (!RecvFrame(sock, &frame).ok()) return;  // peer done or gone
      if (frame.type != MsgType::kShuffleFetch) return;
      Result<ShuffleFetchMsg> msg = ShuffleFetchMsg::Decode(frame.payload);
      if (!msg.ok()) return;
      std::shared_ptr<const ShuffleStore::Shards> shards =
          store_->Find(msg->job, msg->map_task);
      if (shards == nullptr || msg->partition >= shards->size()) {
        TaskErrorMsg err;
        err.error = Status::NotFound(
            "no retained partition for job '" + msg->job + "' map task " +
            std::to_string(msg->map_task) + " partition " +
            std::to_string(msg->partition));
        std::string payload;
        err.EncodeTo(&payload);
        (void)SendFrame(sock, MsgType::kTaskError, payload);
        continue;
      }
      const mr::ShuffleShard& shard = (*shards)[msg->partition];
      ChunkStreamWriter writer(sock, MsgType::kShuffleChunk,
                               MsgType::kShuffleEnd);
      Status st;
      for (size_t i = 0; st.ok() && i < shard.NumRecords(); ++i) {
        st = writer.Add(shard.key(i), shard.value(i));
      }
      if (st.ok()) st = writer.Finish();
      if (!st.ok()) return;  // fetcher gone; its coordinator handles it
    }
  }

  ShuffleStore* store_;
  Listener listener_;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<std::thread> conn_threads_;
};

/// Wraps one remote shuffle source so a mid-merge failure is attributed to
/// its endpoint (the coordinator marks that worker dead and re-runs its map
/// tasks before retrying this reduce).
class SourceStream : public store::RecordStream {
 public:
  SourceStream(Socket* socket, std::string endpoint, std::string* lost)
      : inner_(socket, MsgType::kShuffleChunk, MsgType::kShuffleEnd),
        endpoint_(std::move(endpoint)),
        lost_(lost) {}

  Status Next(bool* has_record, std::string_view* key,
              std::string_view* value) override {
    Status st = inner_.Next(has_record, key, value);
    if (!st.ok() && lost_->empty()) *lost_ = endpoint_;
    return st;
  }

  uint64_t records() const { return inner_.records(); }
  uint64_t payload_bytes() const { return inner_.payload_bytes(); }

 private:
  FrameRecordStream inner_;
  std::string endpoint_;
  std::string* lost_;
};

/// Executes a reduce task by pulling every shuffle source over its own
/// connection — in map-task order, so the loser tree's source-index
/// tie-break reproduces exactly the order the in-memory shuffle's stable
/// sort would have produced.
Status ExecuteReduceOverSources(const mr::TaskSpec& spec,
                                const mr::TaskFactories& factories,
                                mr::TaskOutput* out,
                                std::string* lost_endpoint) {
  WallTimer timer;
  mr::TaskMetrics& tm = out->metrics;
  const size_t n = spec.shuffle_sources.size();
  std::vector<Socket> sockets;
  sockets.reserve(n);
  for (const mr::ShuffleSource& src : spec.shuffle_sources) {
    FSJOIN_ASSIGN_OR_RETURN(Endpoint ep, ParseEndpoint(src.endpoint));
    Result<Socket> sock = Socket::Connect(ep, /*timeout_ms=*/5000);
    if (!sock.ok()) {
      *lost_endpoint = src.endpoint;
      return sock.status();
    }
    ShuffleFetchMsg msg;
    msg.job = src.job;
    msg.map_task = src.map_task;
    msg.partition = spec.task_index;
    std::string payload;
    msg.EncodeTo(&payload);
    Status st = SendFrame(&*sock, MsgType::kShuffleFetch, payload);
    if (!st.ok()) {
      *lost_endpoint = src.endpoint;
      return st;
    }
    sockets.push_back(std::move(*sock));
  }

  mr::VectorEmitter emit(&out->records);
  std::unique_ptr<mr::Reducer> reducer = factories.reducer();
  if (n == 0) {
    FSJOIN_RETURN_NOT_OK(reducer->Setup());
    FSJOIN_RETURN_NOT_OK(reducer->Finish(&emit));
  } else {
    std::vector<std::unique_ptr<store::RecordStream>> sources;
    std::vector<const SourceStream*> raw;
    sources.reserve(n);
    raw.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      auto stream = std::make_unique<SourceStream>(
          &sockets[i], spec.shuffle_sources[i].endpoint, lost_endpoint);
      raw.push_back(stream.get());
      sources.push_back(std::move(stream));
    }
    store::LoserTreeMerge merge(std::move(sources));
    FSJOIN_RETURN_NOT_OK(mr::ReduceMergedStream(reducer.get(), &merge, &emit,
                                                &tm.max_group_bytes));
    for (const SourceStream* s : raw) {
      tm.input_records += s->records();
      tm.input_bytes += s->payload_bytes();
    }
  }
  tm.wall_micros = timer.ElapsedMicros();
  tm.output_records = emit.records();
  tm.output_bytes = emit.bytes();
  return Status::OK();
}

/// One worker's control-connection session: reads frames from the
/// coordinator, executes dispatched tasks on a second thread (so
/// heartbeats keep being answered mid-task), retains map output in the
/// shuffle store.
class WorkerSession {
 public:
  WorkerSession(Socket control, ShuffleStore* store, ShuffleServer* shuffle)
      : control_(std::move(control)), store_(store), shuffle_(shuffle) {}

  ~WorkerSession() { JoinExec(); }

  Status Handshake() {
    HelloMsg hello;
    hello.pid = CurrentPid();
    hello.shuffle_port = shuffle_->port();
    std::string payload;
    hello.EncodeTo(&payload);
    FSJOIN_RETURN_NOT_OK(Send(MsgType::kHello, payload));
    Frame frame;
    FSJOIN_RETURN_NOT_OK(RecvFrame(&control_, &frame));
    if (frame.type != MsgType::kHelloAck) {
      return Status::Corruption(std::string("worker handshake: expected "
                                            "hello-ack, got ") +
                                MsgTypeName(frame.type));
    }
    FSJOIN_ASSIGN_OR_RETURN(HelloAckMsg ack, HelloAckMsg::Decode(frame.payload));
    (void)ack;
    return Status::OK();
  }

  Status Serve() {
    for (;;) {
      Frame frame;
      Status st = RecvFrame(&control_, &frame);
      if (!st.ok()) {
        // The coordinator vanished (its destructor may close without a
        // kShutdown). Not a worker failure.
        return Status::OK();
      }
      switch (frame.type) {
        case MsgType::kHeartbeat:
          FSJOIN_RETURN_NOT_OK(Send(MsgType::kHeartbeatAck, ""));
          break;
        case MsgType::kDispatchTask:
          FSJOIN_RETURN_NOT_OK(HandleDispatch(frame.payload));
          break;
        case MsgType::kShuffleRelease: {
          Decoder dec(frame.payload);
          std::string_view job;
          FSJOIN_RETURN_NOT_OK(dec.GetLengthPrefixed(&job));
          store_->ReleaseJob(std::string(job));
          break;
        }
        case MsgType::kShutdown:
          JoinExec();
          return Status::OK();
        default:
          return Status::Corruption(
              std::string("worker control: unexpected ") +
              MsgTypeName(frame.type) + " frame");
      }
    }
  }

 private:
  Status Send(MsgType type, std::string_view payload) {
    std::lock_guard<std::mutex> lock(send_mu_);
    return SendFrame(&control_, type, payload);
  }

  void JoinExec() {
    if (exec_.joinable()) exec_.join();
  }

  Status HandleDispatch(std::string_view payload) {
    // The previous task already sent its result (the coordinator marks a
    // worker idle only then), so this join never blocks long.
    JoinExec();
    Decoder dec(payload);
    uint32_t num_streams = 0;
    std::string_view spec_bytes;
    FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&num_streams));
    FSJOIN_RETURN_NOT_OK(dec.GetLengthPrefixed(&spec_bytes));
    if (!dec.done()) {
      return Status::Corruption("dispatch: trailing bytes");
    }
    FSJOIN_ASSIGN_OR_RETURN(mr::TaskSpec spec, mr::TaskSpec::Decode(spec_bytes));
    // Input streams follow the dispatch frame back-to-back; the control
    // loop consumes them synchronously (the coordinator sends no probes
    // while it is still streaming).
    mr::Dataset input;
    for (uint32_t s = 0; s < num_streams; ++s) {
      FrameRecordStream stream(&control_, MsgType::kTaskData,
                               MsgType::kTaskDataEnd);
      bool has = false;
      std::string_view key, value;
      for (;;) {
        FSJOIN_RETURN_NOT_OK(stream.Next(&has, &key, &value));
        if (!has) break;
        input.push_back(mr::KeyValue{std::string(key), std::string(value)});
      }
    }
    exec_ = std::thread([this, spec = std::move(spec),
                         input = std::move(input)]() mutable {
      ExecTask(std::move(spec), std::move(input));
    });
    return Status::OK();
  }

  void ExecTask(mr::TaskSpec spec, mr::Dataset input) {
    if (FaultMatches(spec)) {
      std::_Exit(3);
    }
    mr::TaskOutput out;
    std::string lost_endpoint;
    Status st = RunTask(spec, std::move(input), &out, &lost_endpoint);
    if (st.ok()) {
      std::string payload;
      EncodeTaskOutputWire(out, &payload);
      st = Send(MsgType::kTaskResult, payload);
      if (st.ok()) return;
      // The result could not be delivered; the coordinator will see the
      // broken connection and treat this worker as dead. Nothing to do.
      return;
    }
    TaskErrorMsg err;
    err.error = st;
    err.lost_endpoint = lost_endpoint;
    std::string payload;
    err.EncodeTo(&payload);
    (void)Send(MsgType::kTaskError, payload);
  }

  Status RunTask(const mr::TaskSpec& spec, mr::Dataset input,
                 mr::TaskOutput* out, std::string* lost_endpoint) {
    if (spec.factory.empty()) {
      return Status::InvalidArgument("dispatched task has no factory name");
    }
    FSJOIN_ASSIGN_OR_RETURN(
        mr::TaskFactories factories,
        mr::ResolveTaskFactory(spec.factory, spec.payload));
    if (spec.kind == mr::TaskKind::kMap) {
      FSJOIN_RETURN_NOT_OK(mr::ExecuteMapTask(spec, factories, input.data(),
                                              input.size(), out));
      if (spec.retain_shuffle) {
        // Sort each partition now (stable, same tag order as the in-memory
        // shuffle) and keep it resident for peer fetches; the result
        // carries only the per-partition stats.
        auto shards = std::make_shared<ShuffleStore::Shards>(
            spec.num_partitions);
        out->partition_stats.resize(spec.num_partitions);
        for (uint32_t p = 0; p < spec.num_partitions; ++p) {
          mr::ShuffleShard& shard = (*shards)[p];
          FSJOIN_RETURN_NOT_OK(shard.AddBuffer(std::move(out->partitions[p])));
          shard.SortByKey();
          out->partition_stats[p].records = shard.NumRecords();
          out->partition_stats[p].bytes = shard.PayloadBytes();
        }
        out->partitions.clear();
        store_->Put(spec.job_name, spec.task_index, std::move(shards));
      }
      return Status::OK();
    }
    if (!spec.shuffle_sources.empty() || spec.input_runs.empty()) {
      return ExecuteReduceOverSources(spec, factories, out, lost_endpoint);
    }
    return mr::ExecuteReduceTaskFromRuns(spec, factories, out);
  }

  Socket control_;
  std::mutex send_mu_;
  ShuffleStore* store_;
  ShuffleServer* shuffle_;
  std::thread exec_;
};

}  // namespace

Status ServeWorker(const WorkerServeOptions& options) {
  if (options.connect.empty() == options.listen.empty()) {
    return Status::InvalidArgument(
        "worker needs exactly one of connect/listen");
  }
  std::string shuffle_host = "127.0.0.1";
  Socket control;
  if (!options.connect.empty()) {
    FSJOIN_ASSIGN_OR_RETURN(Endpoint coord, ParseEndpoint(options.connect));
    FSJOIN_ASSIGN_OR_RETURN(control,
                            Socket::Connect(coord, options.timeout_ms));
  }

  ShuffleStore store;
  ShuffleServer shuffle(&store);
  if (!options.listen.empty()) {
    FSJOIN_ASSIGN_OR_RETURN(Endpoint self, ParseEndpoint(options.listen));
    shuffle_host = self.host;
    FSJOIN_RETURN_NOT_OK(shuffle.Start(shuffle_host));
    FSJOIN_ASSIGN_OR_RETURN(Listener listener,
                            Listener::Listen(self.host, self.port));
    // Wait indefinitely for the coordinator; standalone workers are
    // started before the join driver.
    for (;;) {
      Result<Socket> conn = listener.Accept(/*timeout_ms=*/1000);
      if (conn.ok()) {
        control = std::move(*conn);
        break;
      }
    }
  } else {
    FSJOIN_RETURN_NOT_OK(shuffle.Start(shuffle_host));
  }

  WorkerSession session(std::move(control), &store, &shuffle);
  FSJOIN_RETURN_NOT_OK(session.Handshake());
  Status st = session.Serve();
  shuffle.Stop();
  return st;
}

int WorkerServeMainIfRequested(int argc, char** argv) {
  SetWorkerServeAvailable(true);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--worker-serve") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--worker-serve needs host:port\n");
        return 2;
      }
      WorkerServeOptions options;
      options.connect = argv[i + 1];
      Status st = ServeWorker(options);
      if (!st.ok()) {
        std::fprintf(stderr, "worker failed: %s\n", st.ToString().c_str());
        return 3;
      }
      return 0;
    }
  }
  return -1;
}

bool WorkerServeAvailable() { return g_worker_serve_available.load(); }

void SetWorkerServeAvailable(bool available) {
  g_worker_serve_available.store(available);
}

}  // namespace fsjoin::net
