#ifndef FSJOIN_STORE_MEMORY_BUDGET_H_
#define FSJOIN_STORE_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>

namespace fsjoin::store {

/// Byte-accounting governor for shuffle memory.
///
/// Holders of large allocations (shuffle shards owning KvBuffer arenas,
/// dataflow shuffle buckets) Charge() the bytes they take ownership of and
/// Release() them once the bytes are spilled to disk or consumed. Charge
/// never blocks and never fails — memory has already been allocated by the
/// time it is accounted for — it only reports whether the holder is now
/// over budget, and the caller is expected to react by spilling and
/// releasing. This makes the budget a *governor*, not an allocator: a
/// single record larger than the whole budget still passes through, it
/// just gets spilled immediately afterwards.
///
/// Budgets chain: a per-job budget constructed with a parent forwards every
/// charge upward, so concurrent jobs sharing the process-wide budget
/// (ProcessMemoryBudget()) spill when *either* their own limit or the
/// global one trips. All methods are thread-safe.
class MemoryBudget {
 public:
  /// Sentinel limit meaning "never trips".
  static constexpr uint64_t kUnlimited = UINT64_MAX;

  explicit MemoryBudget(uint64_t limit_bytes = kUnlimited,
                        MemoryBudget* parent = nullptr)
      : limit_(limit_bytes), used_(0), parent_(parent) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Accounts for `bytes` here and in every parent. Returns true while this
  /// budget and all ancestors stay within their limits; false means the
  /// caller should spill what it holds and Release() the charge.
  bool Charge(uint64_t bytes) {
    const uint64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) +
                         bytes;
    const bool here_ok = now <= limit_.load(std::memory_order_relaxed);
    const bool parent_ok = parent_ == nullptr || parent_->Charge(bytes);
    return here_ok && parent_ok;
  }

  /// Returns `bytes` previously Charge()d, here and in every parent.
  void Release(uint64_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    if (parent_ != nullptr) parent_->Release(bytes);
  }

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t limit() const { return limit_.load(std::memory_order_relaxed); }
  void set_limit(uint64_t limit_bytes) {
    limit_.store(limit_bytes, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> limit_;
  std::atomic<uint64_t> used_;
  MemoryBudget* parent_;
};

/// The process-wide budget that every per-job shuffle budget chains to.
/// Unlimited until narrowed via set_limit() (wired to
/// exec::ExecConfig::process_memory_bytes by MakeBackend).
MemoryBudget& ProcessMemoryBudget();

}  // namespace fsjoin::store

#endif  // FSJOIN_STORE_MEMORY_BUDGET_H_
