#ifndef FSJOIN_STORE_MERGE_H_
#define FSJOIN_STORE_MERGE_H_

#include <memory>
#include <string_view>
#include <vector>

#include "store/record_stream.h"
#include "util/status.h"

namespace fsjoin::store {

/// Streaming k-way merge of sorted RecordStreams using a loser tree.
///
/// Each Next() costs one tournament replay — ceil(log2 k) key comparisons —
/// instead of the k-1 a naive scan would pay, and only one record per
/// source is resident at a time, so merging k spill runs needs O(k) block
/// buffers of memory regardless of total run size.
///
/// The merge is *stable across sources*: records with equal keys are
/// emitted in ascending source index order. Spill code relies on this —
/// runs are numbered in buffer-arrival order, so merging them with this
/// tie-break reproduces exactly the order the in-memory stable tag sort
/// would have produced, keeping spilled reduces byte-identical to
/// in-memory ones.
///
/// Single-source merges bypass the tree entirely and forward the source.
class LoserTreeMerge : public RecordStream {
 public:
  explicit LoserTreeMerge(std::vector<std::unique_ptr<RecordStream>> sources);
  ~LoserTreeMerge() override = default;

  Status Next(bool* has_record, std::string_view* key,
              std::string_view* value) override;

 private:
  /// Pulls the first record of every source and plays the initial
  /// tournament bottom-up.
  Status Init();

  /// Advances source `s` and replays its path to the root.
  Status Advance(int s);

  /// True when source `a` is emitted before source `b`: compares current
  /// keys bytewise, breaking ties on the source index. Exhausted sources
  /// always lose.
  bool Precedes(int a, int b) const;

  Status Pull(int s);

  std::vector<std::unique_ptr<RecordStream>> sources_;
  std::vector<std::string_view> keys_;
  std::vector<std::string_view> values_;
  std::vector<bool> exhausted_;
  std::vector<int> tree_;  // losers at internal nodes 1..k-1
  int winner_ = -1;
  int last_winner_ = -1;  // source whose views were handed out last
  bool initialized_ = false;
};

}  // namespace fsjoin::store

#endif  // FSJOIN_STORE_MERGE_H_
