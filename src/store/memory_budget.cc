#include "store/memory_budget.h"

namespace fsjoin::store {

MemoryBudget& ProcessMemoryBudget() {
  static MemoryBudget budget(MemoryBudget::kUnlimited);
  return budget;
}

}  // namespace fsjoin::store
