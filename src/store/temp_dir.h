#ifndef FSJOIN_STORE_TEMP_DIR_H_
#define FSJOIN_STORE_TEMP_DIR_H_

#include <string>

#include "util/status.h"

namespace fsjoin::store {

/// RAII owner of a spill scratch directory: Create() makes a uniquely named
/// directory and the destructor recursively removes it, so spill runs never
/// outlive their job — including on error paths, where the stack unwind
/// still runs the destructor. Move-only; a moved-from instance owns nothing
/// and its destructor is a no-op.
class TempSpillDir {
 public:
  /// Creates `<base>/<prefix>-<pid>-<seq>`. An empty `base` uses the
  /// system temp directory. `base` is created first if missing.
  static Result<TempSpillDir> Create(const std::string& base,
                                     const std::string& prefix);

  TempSpillDir(TempSpillDir&& other) noexcept;
  TempSpillDir& operator=(TempSpillDir&& other) noexcept;
  TempSpillDir(const TempSpillDir&) = delete;
  TempSpillDir& operator=(const TempSpillDir&) = delete;

  ~TempSpillDir();

  /// Removes the directory now (best effort); the destructor then no-ops.
  void RemoveNow();

  const std::string& path() const { return path_; }

 private:
  explicit TempSpillDir(std::string path) : path_(std::move(path)) {}

  std::string path_;
};

}  // namespace fsjoin::store

#endif  // FSJOIN_STORE_TEMP_DIR_H_
