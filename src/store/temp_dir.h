#ifndef FSJOIN_STORE_TEMP_DIR_H_
#define FSJOIN_STORE_TEMP_DIR_H_

#include <string>

#include "util/status.h"

namespace fsjoin::store {

/// RAII owner of a spill scratch directory: Create() makes a uniquely named
/// directory and the destructor recursively removes it, so spill runs never
/// outlive their job — including on error paths, where the stack unwind
/// still runs the destructor. Move-only; a moved-from instance owns nothing
/// and its destructor is a no-op.
///
/// Ownership is per-process: the pid that called Create() owns the
/// directory. A forked child inherits the object but not ownership, so any
/// cleanup it runs (destructor or RemoveNow()) is a no-op — the parent's
/// scratch must survive until every child task has finished and is then
/// removed exactly once, by the parent, on success and failure paths alike.
/// (Subprocess task children additionally _exit() without unwinding; the
/// pid guard covers code that does unwind, e.g. error paths before exec.)
class TempSpillDir {
 public:
  /// Creates `<base>/<prefix>-<host>-<pid>-<seq>` (`host` is the sanitized
  /// short hostname, "localhost" when unavailable — pid alone is not unique
  /// when cluster workers on different machines share a scratch
  /// filesystem). An empty `base` uses the system temp directory. `base`
  /// is created first if missing.
  static Result<TempSpillDir> Create(const std::string& base,
                                     const std::string& prefix);

  TempSpillDir(TempSpillDir&& other) noexcept;
  TempSpillDir& operator=(TempSpillDir&& other) noexcept;
  TempSpillDir(const TempSpillDir&) = delete;
  TempSpillDir& operator=(const TempSpillDir&) = delete;

  ~TempSpillDir();

  /// Removes the directory now (best effort) if this process owns it; the
  /// destructor then no-ops. In a forked child this only releases the
  /// handle, never the parent's files.
  void RemoveNow();

  const std::string& path() const { return path_; }

 private:
  TempSpillDir(std::string path, long owner_pid)
      : path_(std::move(path)), owner_pid_(owner_pid) {}

  std::string path_;
  long owner_pid_ = 0;
};

}  // namespace fsjoin::store

#endif  // FSJOIN_STORE_TEMP_DIR_H_
