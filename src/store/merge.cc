#include "store/merge.h"

#include <utility>

namespace fsjoin::store {

LoserTreeMerge::LoserTreeMerge(
    std::vector<std::unique_ptr<RecordStream>> sources)
    : sources_(std::move(sources)),
      keys_(sources_.size()),
      values_(sources_.size()),
      exhausted_(sources_.size(), false) {}

Status LoserTreeMerge::Pull(int s) {
  bool has = false;
  FSJOIN_RETURN_NOT_OK(sources_[s]->Next(&has, &keys_[s], &values_[s]));
  if (!has) {
    exhausted_[s] = true;
    keys_[s] = {};
    values_[s] = {};
  }
  return Status::OK();
}

bool LoserTreeMerge::Precedes(int a, int b) const {
  if (a < 0) return false;
  if (b < 0) return true;
  if (exhausted_[a] || exhausted_[b]) {
    if (exhausted_[a] != exhausted_[b]) return exhausted_[b];
    return a < b;  // both exhausted: any consistent order works
  }
  const int cmp = keys_[a].compare(keys_[b]);
  if (cmp != 0) return cmp < 0;
  return a < b;  // equal keys: lower source (earlier run) first
}

Status LoserTreeMerge::Init() {
  initialized_ = true;
  const int k = static_cast<int>(sources_.size());
  for (int s = 0; s < k; ++s) FSJOIN_RETURN_NOT_OK(Pull(s));
  if (k <= 1) {
    winner_ = (k == 1 && !exhausted_[0]) ? 0 : -1;
    return Status::OK();
  }
  // Implicit complete binary tree: internal nodes 1..k-1, leaf for source s
  // at node k+s. Play the tournament bottom-up; each internal node stores
  // the loser of its subtree match, the winner moves up.
  tree_.assign(static_cast<size_t>(k), -1);
  std::vector<int> winner_at(static_cast<size_t>(2 * k), -1);
  for (int node = 2 * k - 1; node >= k; --node) winner_at[node] = node - k;
  for (int node = k - 1; node >= 1; --node) {
    const int a = winner_at[2 * node];
    const int b = winner_at[2 * node + 1];
    const int w = Precedes(b, a) ? b : a;
    tree_[node] = (w == a) ? b : a;
    winner_at[node] = w;
  }
  winner_ = winner_at[1];
  if (winner_ >= 0 && exhausted_[winner_]) winner_ = -1;
  return Status::OK();
}

Status LoserTreeMerge::Advance(int s) {
  FSJOIN_RETURN_NOT_OK(Pull(s));
  const int k = static_cast<int>(sources_.size());
  if (k == 1) {
    winner_ = exhausted_[0] ? -1 : 0;
    return Status::OK();
  }
  // Replay s's path: at each node the stored loser challenges the climber.
  for (int node = (k + s) / 2; node >= 1; node /= 2) {
    if (Precedes(tree_[node], s)) std::swap(s, tree_[node]);
  }
  winner_ = (s >= 0 && !exhausted_[s]) ? s : -1;
  return Status::OK();
}

Status LoserTreeMerge::Next(bool* has_record, std::string_view* key,
                            std::string_view* value) {
  if (!initialized_) FSJOIN_RETURN_NOT_OK(Init());
  // The previous winner's views were handed to the caller; only now that
  // they asked for the next record may that source overwrite its buffer.
  if (last_winner_ >= 0) {
    const int s = last_winner_;
    last_winner_ = -1;
    FSJOIN_RETURN_NOT_OK(Advance(s));
  }
  if (winner_ < 0) {
    *has_record = false;
    return Status::OK();
  }
  *key = keys_[winner_];
  *value = values_[winner_];
  last_winner_ = winner_;
  *has_record = true;
  return Status::OK();
}

}  // namespace fsjoin::store
