#include "store/temp_dir.h"

#include <atomic>
#include <filesystem>
#include <string>
#include <system_error>
#include <utility>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace fsjoin::store {

namespace fs = std::filesystem;

namespace {

long CurrentPid() {
#ifdef _WIN32
  return _getpid();
#else
  return static_cast<long>(getpid());
#endif
}

/// Short sanitized hostname for spill-dir names. With cluster workers on
/// several machines sharing a filesystem (NFS scratch), pid alone can
/// collide across hosts; "host-pid" cannot.
std::string HostTag() {
#ifdef _WIN32
  return "localhost";
#else
  char buf[256];
  if (gethostname(buf, sizeof(buf)) != 0) return "localhost";
  buf[sizeof(buf) - 1] = '\0';
  std::string tag;
  for (const char* p = buf; *p != '\0' && tag.size() < 32; ++p) {
    const char c = *p;
    if (c == '.') break;  // short name only: "node3.cluster" -> "node3"
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    tag.push_back(safe ? c : '_');
  }
  return tag.empty() ? "localhost" : tag;
#endif
}

}  // namespace

Result<TempSpillDir> TempSpillDir::Create(const std::string& base,
                                          const std::string& prefix) {
  static std::atomic<uint64_t> sequence{0};
  std::error_code ec;
  fs::path root = base.empty() ? fs::temp_directory_path(ec) : fs::path(base);
  if (ec) {
    return Status::IoError("no temp directory: " + ec.message());
  }
  fs::create_directories(root, ec);  // ok if it already exists
  if (ec) {
    return Status::IoError("cannot create spill base " + root.string() +
                           ": " + ec.message());
  }
  static const std::string host_tag = HostTag();
  for (int attempt = 0; attempt < 64; ++attempt) {
    fs::path candidate =
        root / (prefix + "-" + host_tag + "-" +
                std::to_string(CurrentPid()) + "-" +
                std::to_string(sequence.fetch_add(1)));
    if (fs::create_directory(candidate, ec)) {
      return TempSpillDir(candidate.string(), CurrentPid());
    }
    if (ec) {
      return Status::IoError("cannot create spill dir " + candidate.string() +
                             ": " + ec.message());
    }
    // false + no error: the name exists (stale sequence); try the next one.
  }
  return Status::IoError("cannot find unused spill dir name under " +
                         root.string());
}

TempSpillDir::TempSpillDir(TempSpillDir&& other) noexcept
    : path_(std::exchange(other.path_, std::string())),
      owner_pid_(std::exchange(other.owner_pid_, 0)) {}

TempSpillDir& TempSpillDir::operator=(TempSpillDir&& other) noexcept {
  if (this != &other) {
    RemoveNow();
    path_ = std::exchange(other.path_, std::string());
    owner_pid_ = std::exchange(other.owner_pid_, 0);
  }
  return *this;
}

TempSpillDir::~TempSpillDir() { RemoveNow(); }

void TempSpillDir::RemoveNow() {
  if (path_.empty()) return;
  if (CurrentPid() != owner_pid_) {
    // A forked child inherited this handle; the directory belongs to the
    // parent, which may still be handing it to sibling tasks. Drop the
    // handle without touching the filesystem.
    path_.clear();
    return;
  }
  std::error_code ec;
  fs::remove_all(path_, ec);  // best effort: leaking temp files beats
  path_.clear();              // throwing from a destructor
}

}  // namespace fsjoin::store
