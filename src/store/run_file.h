#ifndef FSJOIN_STORE_RUN_FILE_H_
#define FSJOIN_STORE_RUN_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "store/record_stream.h"
#include "util/status.h"

namespace fsjoin::store {

/// Spill run files.
///
/// A run holds key-sorted records written from a sealed shuffle arena. The
/// layout is a sequence of CRC32C-framed blocks followed by a fixed-size
/// footer:
///
///   run     := block* footer
///   block   := payload_len : fixed32-BE
///              crc32c(payload) : fixed32-BE
///              payload
///   payload := ( key_len : varint32, val_len : varint32, key, value )*
///   footer  := records       : fixed64-BE
///              payload_bytes : fixed64-BE          (sum of key+value bytes)
///              blocks        : fixed32-BE
///              crc32c(previous 20 footer bytes) : fixed32-BE
///              magic         : fixed64-BE          (kRunMagic)
///
/// Records never straddle a block boundary, so a reader holds at most one
/// decoded block (~kDefaultRunBlockBytes) in memory regardless of run size.
/// Every payload byte is covered by a frame CRC and the footer is covered
/// by its own CRC, so bit flips and truncations surface as
/// Status::Corruption rather than bad join output.

/// "FSJRUN1\n" as a big-endian u64.
inline constexpr uint64_t kRunMagic = 0x46534A52554E310Aull;

/// Serialized footer size in bytes.
inline constexpr size_t kRunFooterBytes = 8 + 8 + 4 + 4 + 8;

/// Target uncompressed payload bytes per block.
inline constexpr size_t kDefaultRunBlockBytes = 256 * 1024;

/// Streams records into a run file. Records must be Add()ed in bytewise
/// key order (the writer does not verify this; the spill path sorts the
/// arena first). Not thread-safe.
class RunWriter {
 public:
  explicit RunWriter(std::string path,
                     size_t block_bytes = kDefaultRunBlockBytes);
  ~RunWriter();

  RunWriter(const RunWriter&) = delete;
  RunWriter& operator=(const RunWriter&) = delete;

  /// Creates/truncates the file. Must be called before Add().
  Status Open();

  /// Appends one record; flushes a block frame once the buffered payload
  /// reaches the block size.
  Status Add(std::string_view key, std::string_view value);

  /// Flushes the final block, writes the footer and closes the file. The
  /// run is unreadable until Finish() succeeds.
  Status Finish();

  /// Records written so far.
  uint64_t records() const { return records_; }
  /// Sum of key+value bytes written so far (matches KvBuffer payload
  /// accounting, so spilled_bytes metrics line up with shuffle_bytes).
  uint64_t payload_bytes() const { return payload_bytes_; }

 private:
  Status FlushBlock();

  std::string path_;
  size_t block_bytes_;
  std::FILE* file_ = nullptr;
  std::string block_;
  uint64_t records_ = 0;
  uint64_t payload_bytes_ = 0;
  uint32_t blocks_ = 0;
  bool finished_ = false;
};

/// Streams records back out of a run file, verifying the footer on Open()
/// and each block's CRC as it is loaded. Any mismatch — bad frame CRC,
/// short or altered footer, record/byte/block counts that disagree with
/// the footer — returns Status::Corruption; a missing file returns IoError.
class RunReader : public RecordStream {
 public:
  /// Opens `path` and validates its footer.
  static Result<std::unique_ptr<RunReader>> Open(const std::string& path);

  ~RunReader() override;

  RunReader(const RunReader&) = delete;
  RunReader& operator=(const RunReader&) = delete;

  Status Next(bool* has_record, std::string_view* key,
              std::string_view* value) override;

  /// Record count promised by the footer.
  uint64_t records() const { return footer_records_; }
  /// Key+value byte count promised by the footer.
  uint64_t payload_bytes() const { return footer_payload_bytes_; }

 private:
  RunReader(std::string path, std::FILE* file, uint64_t data_end,
            uint64_t footer_records, uint64_t footer_payload_bytes,
            uint32_t footer_blocks);

  /// Reads and CRC-checks the next block frame into block_.
  Status LoadBlock();

  std::string path_;
  std::FILE* file_;
  uint64_t data_end_;  // file offset where the footer starts
  uint64_t offset_ = 0;
  uint64_t footer_records_;
  uint64_t footer_payload_bytes_;
  uint32_t footer_blocks_;
  std::string block_;
  size_t pos_ = 0;
  uint64_t records_read_ = 0;
  uint64_t payload_read_ = 0;
  uint32_t blocks_read_ = 0;
};

}  // namespace fsjoin::store

#endif  // FSJOIN_STORE_RUN_FILE_H_
