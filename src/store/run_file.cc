#include "store/run_file.h"

#include <cerrno>
#include <cstring>

#include "util/crc32c.h"
#include "util/serde.h"

namespace fsjoin::store {

namespace {

Status IoFail(const char* op, const std::string& path) {
  std::string msg = op;
  msg += " failed for ";
  msg += path;
  msg += ": ";
  msg += std::strerror(errno);
  return Status::IoError(std::move(msg));
}

Status CorruptFail(const char* what, const std::string& path) {
  std::string msg = what;
  msg += " in run file ";
  msg += path;
  return Status::Corruption(std::move(msg));
}

}  // namespace

RunWriter::RunWriter(std::string path, size_t block_bytes)
    : path_(std::move(path)),
      block_bytes_(block_bytes == 0 ? kDefaultRunBlockBytes : block_bytes) {}

RunWriter::~RunWriter() {
  // A writer abandoned before Finish() leaves a footer-less (hence
  // unreadable) file behind; the owning TempSpillDir removes it.
  if (file_ != nullptr) std::fclose(file_);
}

Status RunWriter::Open() {
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) return IoFail("open", path_);
  return Status::OK();
}

Status RunWriter::Add(std::string_view key, std::string_view value) {
  PutVarint32(&block_, static_cast<uint32_t>(key.size()));
  PutVarint32(&block_, static_cast<uint32_t>(value.size()));
  block_.append(key);
  block_.append(value);
  ++records_;
  payload_bytes_ += key.size() + value.size();
  if (block_.size() >= block_bytes_) return FlushBlock();
  return Status::OK();
}

Status RunWriter::FlushBlock() {
  if (block_.empty()) return Status::OK();
  std::string header;
  PutFixed32BE(&header, static_cast<uint32_t>(block_.size()));
  PutFixed32BE(&header, Crc32c(block_));
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(block_.data(), 1, block_.size(), file_) != block_.size()) {
    return IoFail("write", path_);
  }
  ++blocks_;
  block_.clear();
  return Status::OK();
}

Status RunWriter::Finish() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("RunWriter::Finish without Open");
  }
  FSJOIN_RETURN_NOT_OK(FlushBlock());
  std::string footer;
  PutFixed64BE(&footer, records_);
  PutFixed64BE(&footer, payload_bytes_);
  PutFixed32BE(&footer, blocks_);
  PutFixed32BE(&footer, Crc32c(footer));
  PutFixed64BE(&footer, kRunMagic);
  if (std::fwrite(footer.data(), 1, footer.size(), file_) != footer.size()) {
    return IoFail("write footer", path_);
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return IoFail("close", path_);
  finished_ = true;
  return Status::OK();
}

RunReader::RunReader(std::string path, std::FILE* file, uint64_t data_end,
                     uint64_t footer_records, uint64_t footer_payload_bytes,
                     uint32_t footer_blocks)
    : path_(std::move(path)),
      file_(file),
      data_end_(data_end),
      footer_records_(footer_records),
      footer_payload_bytes_(footer_payload_bytes),
      footer_blocks_(footer_blocks) {}

RunReader::~RunReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<RunReader>> RunReader::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return IoFail("open", path);
  auto fail_close = [&](Status st) -> Result<std::unique_ptr<RunReader>> {
    std::fclose(file);
    return st;
  };
  if (std::fseek(file, 0, SEEK_END) != 0) {
    return fail_close(IoFail("seek", path));
  }
  const long size = std::ftell(file);
  if (size < 0) return fail_close(IoFail("tell", path));
  if (static_cast<size_t>(size) < kRunFooterBytes) {
    return fail_close(CorruptFail("short footer", path));
  }
  const uint64_t data_end = static_cast<uint64_t>(size) - kRunFooterBytes;
  if (std::fseek(file, static_cast<long>(data_end), SEEK_SET) != 0) {
    return fail_close(IoFail("seek", path));
  }
  char raw[kRunFooterBytes];
  if (std::fread(raw, 1, kRunFooterBytes, file) != kRunFooterBytes) {
    return fail_close(IoFail("read footer", path));
  }
  Decoder dec(std::string_view(raw, kRunFooterBytes));
  uint64_t records = 0, payload_bytes = 0, magic = 0;
  uint32_t blocks = 0, crc = 0;
  // Fixed-width reads over a 32-byte buffer cannot fail.
  (void)dec.GetFixed64BE(&records);
  (void)dec.GetFixed64BE(&payload_bytes);
  (void)dec.GetFixed32BE(&blocks);
  (void)dec.GetFixed32BE(&crc);
  (void)dec.GetFixed64BE(&magic);
  if (magic != kRunMagic) {
    return fail_close(CorruptFail("bad magic", path));
  }
  if (crc != Crc32c(std::string_view(raw, 20))) {
    return fail_close(CorruptFail("footer CRC mismatch", path));
  }
  if (std::fseek(file, 0, SEEK_SET) != 0) {
    return fail_close(IoFail("seek", path));
  }
  return std::unique_ptr<RunReader>(
      new RunReader(path, file, data_end, records, payload_bytes, blocks));
}

Status RunReader::LoadBlock() {
  if (offset_ + 8 > data_end_) {
    return CorruptFail("truncated block header", path_);
  }
  char raw[8];
  if (std::fread(raw, 1, 8, file_) != 8) return IoFail("read header", path_);
  Decoder dec(std::string_view(raw, 8));
  uint32_t len = 0, crc = 0;
  (void)dec.GetFixed32BE(&len);
  (void)dec.GetFixed32BE(&crc);
  if (len == 0 || len > data_end_ - offset_ - 8) {
    return CorruptFail("block overruns file", path_);
  }
  block_.resize(len);
  if (std::fread(block_.data(), 1, len, file_) != len) {
    return IoFail("read block", path_);
  }
  if (Crc32c(block_) != crc) {
    return CorruptFail("block CRC mismatch", path_);
  }
  offset_ += 8 + len;
  ++blocks_read_;
  pos_ = 0;
  return Status::OK();
}

Status RunReader::Next(bool* has_record, std::string_view* key,
                       std::string_view* value) {
  if (pos_ == block_.size()) {
    if (offset_ == data_end_) {
      // End of stream: cross-check everything the footer promised.
      if (records_read_ != footer_records_ ||
          payload_read_ != footer_payload_bytes_ ||
          blocks_read_ != footer_blocks_) {
        return CorruptFail("footer count mismatch", path_);
      }
      *has_record = false;
      return Status::OK();
    }
    FSJOIN_RETURN_NOT_OK(LoadBlock());
  }
  Decoder dec(std::string_view(block_).substr(pos_));
  uint32_t key_len = 0, val_len = 0;
  if (!dec.GetVarint32(&key_len).ok() || !dec.GetVarint32(&val_len).ok() ||
      dec.remaining() < static_cast<size_t>(key_len) + val_len) {
    return CorruptFail("malformed record", path_);
  }
  const size_t header = block_.size() - pos_ - dec.remaining();
  const char* base = block_.data() + pos_ + header;
  *key = std::string_view(base, key_len);
  *value = std::string_view(base + key_len, val_len);
  pos_ += header + key_len + val_len;
  ++records_read_;
  payload_read_ += key_len + static_cast<uint64_t>(val_len);
  *has_record = true;
  return Status::OK();
}

}  // namespace fsjoin::store
