#ifndef FSJOIN_STORE_RECORD_STREAM_H_
#define FSJOIN_STORE_RECORD_STREAM_H_

#include <string_view>

#include "util/status.h"

namespace fsjoin::store {

/// A pull-based stream of key/value records in bytewise key order.
/// Implemented by RunReader (records streamed off a spill file) and
/// LoserTreeMerge (k-way merge of other streams); the reduce path consumes
/// either without knowing whether the bytes came from RAM or disk.
class RecordStream {
 public:
  virtual ~RecordStream() = default;

  /// Advances to the next record. On success sets *has_record; when true,
  /// *key and *value view the record's bytes. The views stay valid only
  /// until the next call to Next() — callers that need a record across
  /// calls must copy it.
  virtual Status Next(bool* has_record, std::string_view* key,
                      std::string_view* value) = 0;
};

}  // namespace fsjoin::store

#endif  // FSJOIN_STORE_RECORD_STREAM_H_
