#!/usr/bin/env python3
"""Compare two BENCH_*.json files and flag perf regressions.

Usage:
  scripts/bench_diff.py BASELINE.json CURRENT.json [--threshold PCT]
      [--metric METRIC] [--json OUT.json]

Both inputs are the bench harness's JSON (bench_util.h WriteBenchJson):
a {"bench": ..., "results": [{"name", "wall_micros", ...}]} object. Rows
are matched by name; the default metric is wall_micros.

Tracked artifacts (all written by `--json` runs of their benches):
  BENCH_ext_dataflow.json  backend x kernel matrix (bench_ext_dataflow)
  BENCH_runtime.json       task-runner overhead     (bench_ext_dataflow)
  BENCH_cluster.json       1/2/4-worker cluster scaling
                                                    (bench_ext_dataflow)
  BENCH_rs.json            R-S |R|:|S| ratio x backend
                                                    (bench_ext_dataflow)
  BENCH_ext_shuffle.json   external-shuffle spill   (bench_ext_shuffle)
  BENCH_kernels.json       kernel microbenches      (bench_micro_kernels)
  BENCH_auto.json          auto-tuning vs hand cfg  (bench_auto_tune)

Exit status: 0 when no row regressed past --threshold (default 10%),
1 on a regression, 2 on bad input. CI runs this non-gating (the diff is
an uploaded artifact, the step never fails the build) because micro
timings on shared runners are noisy; the threshold is for humans reading
the artifact and for local runs on quiet machines.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write(f"bench_diff: cannot read {path}: {e}\n")
        sys.exit(2)
    if "results" not in data or not isinstance(data["results"], list):
        sys.stderr.write(f"bench_diff: {path} has no results array\n")
        sys.exit(2)
    return data


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent [10]")
    ap.add_argument("--metric", default="wall_micros",
                    help="result field to compare [wall_micros]")
    ap.add_argument("--json", dest="out_json", default=None,
                    help="also write the diff as JSON to this path")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    base_rows = {r["name"]: r for r in base["results"] if "name" in r}
    cur_rows = {r["name"]: r for r in cur["results"] if "name" in r}

    rows = []
    regressions = []
    for name in sorted(base_rows.keys() | cur_rows.keys()):
        b = base_rows.get(name)
        c = cur_rows.get(name)
        if b is None or c is None:
            rows.append({"name": name, "status":
                         "added" if b is None else "removed"})
            continue
        bv = float(b.get(args.metric, 0.0))
        cv = float(c.get(args.metric, 0.0))
        if bv <= 0.0:
            rows.append({"name": name, "status": "no-baseline",
                         "baseline": bv, "current": cv})
            continue
        delta_pct = (cv - bv) / bv * 100.0
        status = "ok"
        if delta_pct > args.threshold:
            status = "regression"
            regressions.append(name)
        elif delta_pct < -args.threshold:
            status = "improvement"
        rows.append({"name": name, "status": status, "baseline": bv,
                     "current": cv, "delta_pct": round(delta_pct, 2)})

    width = max((len(r["name"]) for r in rows), default=4)
    print(f"bench_diff: {args.baseline} -> {args.current} "
          f"(metric={args.metric}, threshold={args.threshold:.1f}%)")
    for r in rows:
        if "delta_pct" in r:
            marker = {"regression": "!!", "improvement": "++"}.get(
                r["status"], "  ")
            print(f"  {marker} {r['name']:<{width}}  "
                  f"{r['baseline']:>12.1f} -> {r['current']:>12.1f}  "
                  f"{r['delta_pct']:>+8.2f}%")
        else:
            print(f"  ?? {r['name']:<{width}}  [{r['status']}]")

    summary = {
        "baseline": args.baseline,
        "current": args.current,
        "metric": args.metric,
        "threshold_pct": args.threshold,
        "regressions": regressions,
        "rows": rows,
    }
    if args.out_json:
        with open(args.out_json, "w") as f:
            json.dump(summary, f, indent=1)
            f.write("\n")

    if regressions:
        print(f"bench_diff: {len(regressions)} regression(s) past "
              f"{args.threshold:.1f}%: {', '.join(regressions)}")
        return 1
    print("bench_diff: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
