#!/usr/bin/env bash
# Runs the tier-1 build + test line for the default preset and, with
# --sanitizers (or PRESETS=...), for the asan/ubsan presets too. Usage:
#   scripts/check.sh                 # default preset only
#   scripts/check.sh --sanitizers    # default + asan + ubsan
#   PRESETS="ubsan" scripts/check.sh # explicit preset list
set -euo pipefail
cd "$(dirname "$0")/.."

presets="${PRESETS:-default}"
if [[ "${1:-}" == "--sanitizers" ]]; then
  presets="default asan ubsan"
fi

for preset in $presets; do
  echo "==== preset: $preset ===================================="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --preset "$preset"
  # Smoke the external-shuffle bench at a tiny scale: its built-in checks
  # fail the run unless the spill-forced path is byte-identical to the
  # in-memory paths, so every CI pass exercises run files + k-way merge
  # (under asan/ubsan too) and leaves a fresh BENCH_ext_shuffle.json.
  bindir="build"
  [[ "$preset" != "default" ]] && bindir="build-$preset"
  echo "---- ext-shuffle spill smoke ($preset) ----"
  FSJOIN_BENCH_SCALE=0.02 "$bindir/bench/bench_ext_shuffle" \
    --json=BENCH_ext_shuffle.json
done
echo "==== all presets passed: $presets ===="
