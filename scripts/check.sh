#!/usr/bin/env bash
# Runs the tier-1 build + test line for the default preset and, with
# --sanitizers (or PRESETS=...), for the asan/ubsan presets too. Usage:
#   scripts/check.sh                 # default preset only
#   scripts/check.sh --sanitizers    # default + asan + ubsan
#   PRESETS="ubsan" scripts/check.sh # explicit preset list
set -euo pipefail
cd "$(dirname "$0")/.."

presets="${PRESETS:-default}"
if [[ "${1:-}" == "--sanitizers" ]]; then
  presets="default asan ubsan"
fi

for preset in $presets; do
  echo "==== preset: $preset ===================================="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --preset "$preset"
done
echo "==== all presets passed: $presets ===="
