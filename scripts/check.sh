#!/usr/bin/env bash
# Runs the tier-1 build + test line for the default preset and, with
# --sanitizers (or PRESETS=...), for the asan/ubsan presets too. Usage:
#   scripts/check.sh                 # default preset, full test suite
#   scripts/check.sh --fast          # unit tests only (skips the slow
#                                    # end-to-end sweeps, the fuzz-smoke
#                                    # and cluster tiers and the bench
#                                    # smoke)
#   scripts/check.sh --sanitizers    # default + asan + ubsan
#   PRESETS="ubsan" scripts/check.sh # explicit preset list
#   FUZZ_SEEDS=1:200 scripts/check.sh
#                                    # additionally run the differential
#                                    # fuzz sweep over that seed range; a
#                                    # failing sweep writes minimized repro
#                                    # test cases to fuzz-repro-<preset>.cc
set -euo pipefail
cd "$(dirname "$0")/.."

presets="${PRESETS:-default}"
fast=0
for arg in "$@"; do
  case "$arg" in
    --sanitizers) presets="default asan ubsan" ;;
    --fast) fast=1 ;;
    *)
      echo "usage: scripts/check.sh [--fast] [--sanitizers]" >&2
      exit 2
      ;;
  esac
done

for preset in $presets; do
  echo "==== preset: $preset ===================================="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  if [[ "$fast" == 1 ]]; then
    # fast tier: everything not labeled slow, fuzz-smoke or cluster. The
    # multiproc tier stays in — it is quick and covers the fork/exec task
    # runners.
    ctest --preset "$preset" -LE "slow|fuzz-smoke|cluster"
    continue
  fi
  ctest --preset "$preset" -LE "multiproc|cluster"
  # Cross-process runner tier (label multiproc): subprocess task execution,
  # fault-injected retries, and run-file interchange across fork/exec.
  # Runs under every preset — the asan/ubsan builds shake out lifetime bugs
  # around fork boundaries that an unsanitized run would miss.
  echo "---- multiproc tier ($preset) ----"
  ctest --preset "$preset" -L "multiproc"
  # Cluster runtime tier (label cluster): socket-RPC workers spawned from
  # the test binary, digest identity against the inline runner, network
  # shuffle, and kill-a-worker fault injection. Serialized like multiproc
  # (workers fork from the test binary) and run under every preset — the
  # sanitizers cover the socket/thread lifetime seams.
  echo "---- cluster tier ($preset) ----"
  ctest --preset "$preset" -L "cluster"
  bindir="build"
  [[ "$preset" != "default" ]] && bindir="build-$preset"
  # Smoke the external-shuffle bench at a tiny scale: its built-in checks
  # fail the run unless the spill-forced path is byte-identical to the
  # in-memory paths, so every CI pass exercises run files + k-way merge
  # (under asan/ubsan too) and leaves a fresh BENCH_ext_shuffle.json.
  echo "---- ext-shuffle spill smoke ($preset) ----"
  FSJOIN_BENCH_SCALE=0.02 "$bindir/bench/bench_ext_shuffle" \
    --json=BENCH_ext_shuffle.json
  # Optional long differential-fuzz sweep (CI's fuzz jobs set FUZZ_SEEDS).
  # On failure fsjoin_fuzz exits 1 and the minimized repros land in
  # fuzz-repro-<preset>.cc for upload as a CI artifact.
  if [[ -n "${FUZZ_SEEDS:-}" ]]; then
    echo "---- fuzz sweep ($preset): seeds $FUZZ_SEEDS ----"
    "$bindir/tools/fsjoin_fuzz" --seeds "$FUZZ_SEEDS" \
      --repro-out "fuzz-repro-$preset.cc"
  fi
done
echo "==== all presets passed: $presets ===="
